//! Exec-scheduler counters under a forced all-conflict workload.
//!
//! Every command writes the same variable, so the default
//! write-everything `classify` makes each command conflict with every
//! in-flight predecessor. A wide pool with a one-slot dependency
//! window must therefore behave exactly like the serial executor —
//! zero parallel admissions, every stall accounted as both a conflict
//! serialization and a window stall — and the schedule must stay
//! serial-equivalent: each increment observes a distinct prefix.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, ExecConfig, LocKey, Mode,
    PartitionId, VarId, Workload,
};
use dynastar_runtime::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// `Op = Add(n)`: adds `n` to every declared variable, returns the
/// resulting values. The default `classify` declares every var a
/// write, which is exactly the all-conflict behaviour under test.
struct Counters;

impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = Vec<(VarId, i64)>;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0 / 10)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
        let mut out = Vec::new();
        for (&v, val) in vars.iter_mut() {
            let next = val.unwrap_or(0) + op;
            *val = Some(next);
            out.push((v, next));
        }
        out
    }
}

/// Closed-loop scripted client: issues the next command when idle,
/// records observed reply values.
struct Script {
    cmds: std::vec::IntoIter<CommandKind<Counters>>,
    seen: Arc<Mutex<Vec<i64>>>,
}

impl Workload<Counters> for Script {
    fn next_command(&mut self, _now: SimTime, _rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        self.cmds.next()
    }

    fn on_completed(
        &mut self,
        _now: SimTime,
        _cmd: &Command<Counters>,
        reply: Option<&Vec<(VarId, i64)>>,
    ) {
        if let Some(r) = reply {
            self.seen.lock().unwrap().extend(r.iter().map(|&(_, v)| v));
        }
    }
}

const CLIENTS: usize = 3;
const CMDS_PER_CLIENT: usize = 5;
const TOTAL: i64 = (CLIENTS * CMDS_PER_CLIENT) as i64;

/// One partition, every command incrementing `VarId(0)`, `CLIENTS`
/// concurrent closed-loop clients deep enough to queue behind the
/// modelled service time. Returns (sorted observed values, metrics
/// snapshot closure results).
fn run(exec: ExecConfig) -> (Vec<i64>, u64, u64, u64) {
    let config = ClusterConfig {
        partitions: 1,
        replicas: 2,
        mode: Mode::Dynastar,
        seed: 7,
        repartition_threshold: u64::MAX,
        exec,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    b.place(LocKey(0), PartitionId(0)).with_var(VarId(0), 0);
    let mut cluster = b.build();

    let seen = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..CLIENTS {
        let cmds = vec![CommandKind::Access { op: 1, vars: vec![VarId(0)] }; CMDS_PER_CLIENT];
        cluster.add_client(Script { cmds: cmds.into_iter(), seen: Arc::clone(&seen) });
    }
    cluster.run_for(SimDuration::from_secs(30));

    let mut values = seen.lock().unwrap().clone();
    values.sort_unstable();
    let m = cluster.metrics();
    (
        values,
        m.counter(mn::EXEC_PARALLEL),
        m.counter(mn::EXEC_SERIALIZED),
        m.counter(mn::EXEC_WINDOW_STALL),
    )
}

#[test]
fn all_conflict_pool_serializes_and_counts_stalls() {
    let service = SimDuration::from_millis(5);
    let pool = ExecConfig { workers: 4, service_time: service, window: 1 };
    let (values, parallel, serialized, window_stall) = run(pool);

    // Serial-equivalent schedule: all 15 increments landed, and each
    // observed a distinct prefix of its predecessors — the reply
    // values are exactly 1..=15 with no duplicates.
    let expected: Vec<i64> = (1..=TOTAL).collect();
    assert_eq!(values, expected, "each increment must see a distinct serial prefix");

    // All-conflict means the pool may never overlap commands…
    assert_eq!(parallel, 0, "conflicting commands must not execute in parallel");
    // …and commands queued behind the 5 ms service time must stall.
    assert!(serialized > 0, "queued conflicting commands must be counted as serialized");
    // With window = 1, the window is full exactly when a conflicting
    // predecessor is in flight, so every stall carries both flags and
    // the two counters must agree.
    assert_eq!(
        serialized, window_stall,
        "window=1 + all-conflict: every serialization is also a window stall"
    );
}

#[test]
fn all_conflict_pool_matches_serial_executor_state() {
    let service = SimDuration::from_millis(5);
    let (serial_values, ..) = run(ExecConfig::serial(service));
    let (pool_values, ..) = run(ExecConfig { workers: 4, service_time: service, window: 1 });
    assert_eq!(
        serial_values, pool_values,
        "pool width must not change the observed value sequence"
    );
    assert_eq!(serial_values.len(), TOTAL as usize, "every command must complete");
}
