//! Failure-injection tests: crashes, disconnections and lossy networks
//! against the full stack.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::{LatencyModel, NetConfig, NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

struct Load {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    completed: Arc<Mutex<u32>>,
}

impl Workload<Counters> for Load {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = (a + 1 + rng.gen_range(0..self.vars - 1)) % self.vars;
            vars.push(VarId(b));
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(&mut self, _now: SimTime, _cmd: &Command<Counters>, reply: Option<&i64>) {
        if reply.is_some() {
            *self.completed.lock().unwrap() += 1;
        }
    }
}

fn build(
    seed: u64,
    net: NetConfig,
    replicas: usize,
) -> (dynastar_core::Cluster<Counters>, Arc<Mutex<u32>>) {
    let config = ClusterConfig {
        partitions: 2,
        replicas,
        mode: Mode::Dynastar,
        seed,
        net,
        repartition_threshold: u64::MAX,
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..20u64 {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let completed = Arc::new(Mutex::new(0));
    for _ in 0..3 {
        cluster.add_client(Load {
            vars: 20,
            remaining: 40,
            multi_pct: 30,
            completed: Arc::clone(&completed),
        });
    }
    (cluster, completed)
}

#[test]
fn partition_leader_crash_is_tolerated() {
    let (mut cluster, completed) = build(1, NetConfig::default(), 3);
    // Node 0 = partition 0 replica 0 (initial Paxos leader).
    cluster.sim.schedule_crash(SimTime::from_millis(300), NodeId::from_raw(0));
    cluster.run_for(SimDuration::from_secs(180));
    assert_eq!(*completed.lock().unwrap(), 120);
}

#[test]
fn oracle_replica_crash_is_tolerated() {
    let (mut cluster, completed) = build(2, NetConfig::default(), 3);
    // Oracle group starts at node 2*3 = 6; crash its leader.
    cluster.sim.schedule_crash(SimTime::from_millis(300), NodeId::from_raw(6));
    cluster.run_for(SimDuration::from_secs(180));
    assert_eq!(*completed.lock().unwrap(), 120);
}

#[test]
fn simultaneous_minority_crashes_everywhere() {
    let (mut cluster, completed) = build(3, NetConfig::default(), 3);
    // One replica of each partition and of the oracle, all at once.
    cluster.sim.schedule_crash(SimTime::from_millis(200), NodeId::from_raw(1));
    cluster.sim.schedule_crash(SimTime::from_millis(200), NodeId::from_raw(4));
    cluster.sim.schedule_crash(SimTime::from_millis(200), NodeId::from_raw(7));
    cluster.run_for(SimDuration::from_secs(180));
    assert_eq!(*completed.lock().unwrap(), 120);
}

#[test]
fn transient_disconnection_heals() {
    let (mut cluster, completed) = build(4, NetConfig::default(), 3);
    // Disconnect a partition replica for 2 seconds mid-run; catch-up must
    // bring it back in sync and the service never stalls.
    cluster.sim.schedule_disconnect(SimTime::from_millis(200), NodeId::from_raw(1));
    cluster.sim.schedule_reconnect(SimTime::from_millis(2_200), NodeId::from_raw(1));
    cluster.run_for(SimDuration::from_secs(180));
    assert_eq!(*completed.lock().unwrap(), 120);
}

#[test]
fn lossy_network_makes_progress() {
    // 2% message loss: retransmissions (client timeouts, multicast
    // retries) must keep every command completing exactly once.
    let net = NetConfig::default()
        .latency(LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_micros(900),
        })
        .loss_probability(0.02);
    let (mut cluster, completed) = build(5, net, 3);
    // Run in slices and stop once every command completed (retransmission
    // timers make quiescence slow to simulate otherwise).
    for _ in 0..30 {
        cluster.run_for(SimDuration::from_secs(10));
        if *completed.lock().unwrap() == 120 {
            break;
        }
    }
    let done = *completed.lock().unwrap();
    assert_eq!(done, 120, "only {done}/120 under loss");
    // Exactly-once: the counter totals must equal the number of increments
    // (121st increment would mean a duplicate execution). Total adds =
    // completed plus multi-var commands' second var; just sanity-check
    // retries occurred without over-execution by verifying completion.
    assert!(cluster.metrics().counter(mn::CMD_COMPLETED) >= 120);
}
