//! End-to-end tests of the full DynaStar stack: clients → atomic multicast
//! → Paxos groups → partition servers/oracle, over the simulated network.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// A bank of counters: `Op = Add(n)` adds `n` to every declared variable
/// and returns the resulting values.
struct Counters;

impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = Vec<(VarId, i64)>;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0 / 10)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
        let mut out = Vec::new();
        for (&v, val) in vars.iter_mut() {
            let next = val.unwrap_or(0) + op;
            *val = Some(next);
            out.push((v, next));
        }
        out
    }
}

type Event = (Command<Counters>, Option<Vec<(VarId, i64)>>, SimTime);

/// Scripted workload: issues a fixed list of commands, records completions.
struct Script {
    cmds: std::vec::IntoIter<CommandKind<Counters>>,
    log: Arc<Mutex<Vec<Event>>>,
}

impl Script {
    fn new(cmds: Vec<CommandKind<Counters>>) -> (Self, Arc<Mutex<Vec<Event>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (Script { cmds: cmds.into_iter(), log: Arc::clone(&log) }, log)
    }
}

impl Workload<Counters> for Script {
    fn next_command(&mut self, _now: SimTime, _rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        self.cmds.next()
    }

    fn on_completed(
        &mut self,
        now: SimTime,
        cmd: &Command<Counters>,
        reply: Option<&Vec<(VarId, i64)>>,
    ) {
        self.log.lock().unwrap().push((cmd.clone(), reply.cloned(), now));
    }
}

fn add(vars: Vec<u64>) -> CommandKind<Counters> {
    CommandKind::Access { op: 1, vars: vars.into_iter().map(VarId).collect() }
}

fn base_config(mode: Mode, partitions: u32, seed: u64) -> ClusterConfig {
    ClusterConfig {
        partitions,
        replicas: 2,
        mode,
        seed,
        repartition_threshold: u64::MAX, // no repartitioning unless asked
        ..ClusterConfig::default()
    }
}

/// Two keys on two partitions with one var each.
fn two_partition_cluster(mode: Mode, seed: u64) -> dynastar_core::Cluster<Counters> {
    let mut b = ClusterBuilder::new(base_config(mode, 2, seed));
    b.place(LocKey(0), PartitionId(0))
        .place(LocKey(1), PartitionId(1))
        .with_var(VarId(0), 0)
        .with_var(VarId(10), 0);
    b.build()
}

#[test]
fn single_partition_command_executes() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 1);
    let (script, log) = Script::new(vec![add(vec![0])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(5));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 1, "command did not complete");
    assert_eq!(log[0].1, Some(vec![(VarId(0), 1)]));
    assert_eq!(cluster.metrics().counter(mn::CMD_SINGLE), 1);
    assert_eq!(cluster.metrics().counter(mn::CMD_MULTI), 0);
}

#[test]
fn sequential_commands_accumulate_state() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 2);
    let (script, log) = Script::new(vec![add(vec![0]), add(vec![0]), add(vec![0])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(10));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3);
    assert_eq!(log[2].1, Some(vec![(VarId(0), 3)]));
}

#[test]
fn multi_partition_command_borrows_and_returns() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 3);
    // Touch vars on both partitions, then each separately: values must
    // have returned to their homes.
    let (script, log) = Script::new(vec![add(vec![0, 10]), add(vec![0]), add(vec![10])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(15));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3, "only {} commands completed", log.len());
    assert_eq!(log[0].1, Some(vec![(VarId(0), 1), (VarId(10), 1)]));
    assert_eq!(log[1].1, Some(vec![(VarId(0), 2)]));
    assert_eq!(log[2].1, Some(vec![(VarId(10), 2)]));
    assert!(cluster.metrics().counter(mn::CMD_MULTI) >= 1);
    assert!(cluster.metrics().counter(mn::OBJECTS_EXCHANGED) >= 2, "borrow + return");
}

#[test]
fn concurrent_clients_on_disjoint_keys_progress() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 4);
    let (s1, l1) = Script::new(vec![add(vec![0]); 10]);
    let (s2, l2) = Script::new(vec![add(vec![10]); 10]);
    cluster.add_client(s1);
    cluster.add_client(s2);
    cluster.run_for(SimDuration::from_secs(30));
    assert_eq!(l1.lock().unwrap().len(), 10);
    assert_eq!(l2.lock().unwrap().len(), 10);
    let last1 = l1.lock().unwrap().last().unwrap().1.clone();
    assert_eq!(last1, Some(vec![(VarId(0), 10)]));
}

#[test]
fn contended_multi_partition_commands_serialize_correctly() {
    // Two clients hammer the same cross-partition pair; final values must
    // equal the total number of adds.
    let mut cluster = two_partition_cluster(Mode::Dynastar, 5);
    let (s1, l1) = Script::new(vec![add(vec![0, 10]); 8]);
    let (s2, l2) = Script::new(vec![add(vec![10, 0]); 8]);
    cluster.add_client(s1);
    cluster.add_client(s2);
    cluster.run_for(SimDuration::from_secs(60));
    let (l1, l2) = (l1.lock().unwrap(), l2.lock().unwrap());
    assert_eq!(l1.len(), 8, "client 1 stalled at {}", l1.len());
    assert_eq!(l2.len(), 8, "client 2 stalled at {}", l2.len());
    // Both counters saw all 16 increments.
    let max0 = l1
        .iter()
        .chain(l2.iter())
        .filter_map(|e| e.1.as_ref())
        .flat_map(|r| r.iter())
        .filter(|(v, _)| *v == VarId(0))
        .map(|&(_, n)| n)
        .max()
        .unwrap();
    assert_eq!(max0, 16);
}

#[test]
fn create_and_delete_key_roundtrip() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 6);
    let (script, log) = Script::new(vec![
        CommandKind::CreateKey { key: LocKey(7), vars: vec![(VarId(70), 5)] },
        add(vec![70]),
        CommandKind::DeleteKey { key: LocKey(7) },
    ]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(15));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3, "only {} commands completed", log.len());
    // The access after create sees the initial value 5 + 1.
    assert_eq!(log[1].1, Some(vec![(VarId(70), 6)]));
}

#[test]
fn access_to_unknown_key_fails_cleanly() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 7);
    let (script, log) = Script::new(vec![add(vec![999]), add(vec![0])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(10));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].1, None, "unknown key must complete unsuccessfully");
    assert_eq!(log[1].1, Some(vec![(VarId(0), 1)]), "client must keep working");
}

#[test]
fn duplicate_create_is_rejected() {
    let mut cluster = two_partition_cluster(Mode::Dynastar, 8);
    let (script, log) = Script::new(vec![
        CommandKind::CreateKey { key: LocKey(9), vars: vec![(VarId(90), 1)] },
        CommandKind::CreateKey { key: LocKey(9), vars: vec![(VarId(90), 2)] },
    ]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(10));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 2);
    assert!(log[0].1.is_none()); // creates complete via Ack (no reply body)
}

#[test]
fn ssmr_mode_executes_multi_partition_commands() {
    let mut cluster = two_partition_cluster(Mode::SSmr, 9);
    let (script, log) = Script::new(vec![add(vec![0, 10]), add(vec![0]), add(vec![10])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(15));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3, "only {} commands completed", log.len());
    assert_eq!(log[0].1, Some(vec![(VarId(0), 1), (VarId(10), 1)]));
    assert_eq!(log[1].1, Some(vec![(VarId(0), 2)]));
    assert_eq!(log[2].1, Some(vec![(VarId(10), 2)]));
}

#[test]
fn dssmr_mode_migrates_state_to_target() {
    let mut cluster = two_partition_cluster(Mode::DsSmr, 10);
    // First command pulls both vars to one partition; follow-ups keep
    // working (the oracle re-routes after migration).
    let (script, log) = Script::new(vec![add(vec![0, 10]), add(vec![0, 10]), add(vec![10])]);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(20));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3, "only {} commands completed", log.len());
    assert_eq!(log[1].1, Some(vec![(VarId(0), 2), (VarId(10), 2)]));
    assert_eq!(log[2].1, Some(vec![(VarId(10), 3)]));
}

#[test]
fn repartitioning_plan_keeps_cluster_consistent() {
    // Low threshold and small hint batches force a repartition mid-run.
    let mut config = base_config(Mode::Dynastar, 2, 11);
    config.repartition_threshold = 10;
    config.min_plan_interval = SimDuration::from_secs(2);
    config.server.hint_batch = 4;
    config.compute_base = SimDuration::from_millis(10);
    let mut b = ClusterBuilder::new(config);
    // 6 keys spread over 2 partitions; co-access pattern pairs keys across
    // partitions so the optimizer has something to improve.
    for k in 0..6u64 {
        b.place(LocKey(k), PartitionId((k % 2) as u32));
        b.with_var(VarId(k * 10), 0);
    }
    let mut cluster = b.build();
    // Client repeatedly co-accesses (0,10), (20,30), (40,50): pairs that
    // straddle partitions under the initial placement.
    let mut cmds = Vec::new();
    for _ in 0..400 {
        cmds.push(add(vec![0, 10]));
        cmds.push(add(vec![20, 30]));
        cmds.push(add(vec![40, 50]));
    }
    let (script, log) = Script::new(cmds);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(120));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 1200, "only {} of 1200 commands completed", log.len());
    // Every command's reply must reflect a consistent counter sequence.
    let final0 = log
        .iter()
        .filter_map(|e| e.1.as_ref())
        .flat_map(|r| r.iter())
        .filter(|(v, _)| *v == VarId(0))
        .map(|&(_, n)| n)
        .max()
        .unwrap();
    assert_eq!(final0, 400);
    // A plan was actually published and applied.
    assert!(
        cluster.metrics().counter(mn::PLANS_PUBLISHED) >= 1,
        "expected at least one repartitioning"
    );
    // After the plan, co-accessed pairs should be colocated: late commands
    // should be single-partition.
    let single = cluster.metrics().counter(mn::CMD_SINGLE);
    assert!(single > 0, "repartitioning should colocate co-accessed keys");
}

#[test]
fn stale_cache_triggers_retry_and_recovers() {
    // Warm client caches + forced repartition = stale routing on purpose.
    let mut config = base_config(Mode::Dynastar, 2, 12);
    config.repartition_threshold = 6;
    config.min_plan_interval = SimDuration::from_secs(1);
    config.server.hint_batch = 2;
    config.warm_client_caches = true;
    config.compute_base = SimDuration::from_millis(5);
    let mut b = ClusterBuilder::new(config);
    for k in 0..4u64 {
        b.place(LocKey(k), PartitionId((k % 2) as u32));
        b.with_var(VarId(k * 10), 0);
    }
    let mut cluster = b.build();
    let mut cmds = Vec::new();
    for _ in 0..40 {
        cmds.push(add(vec![0, 10]));
        cmds.push(add(vec![20, 30]));
    }
    let (script, log) = Script::new(cmds);
    cluster.add_client(script);
    cluster.run_for(SimDuration::from_secs(120));
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 80, "only {} of 80 commands completed", log.len());
    let final0 = log
        .iter()
        .filter_map(|e| e.1.as_ref())
        .flat_map(|r| r.iter())
        .filter(|(v, _)| *v == VarId(0))
        .map(|&(_, n)| n)
        .max()
        .unwrap();
    assert_eq!(final0, 40, "every increment must execute exactly once");
}

#[test]
fn deterministic_runs_for_same_seed() {
    let run = |seed: u64| {
        let mut cluster = two_partition_cluster(Mode::Dynastar, seed);
        let (script, log) = Script::new(vec![add(vec![0, 10]); 5]);
        cluster.add_client(script);
        cluster.run_for(SimDuration::from_secs(20));
        let events = cluster.sim.events_processed();
        let completed = log.lock().unwrap().len();
        (completed, events)
    };
    assert_eq!(run(42), run(42));
}
