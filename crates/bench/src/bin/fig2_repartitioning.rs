//! Figure 2: the impact of graph repartitioning on TPC-C.
//!
//! 4 warehouses on 4 partitions, all districts/warehouses *randomly*
//! scattered at t = 0 (so almost every transaction is multi-partition).
//! Mid-run the oracle's hint threshold triggers a repartitioning; the
//! paper's plot shows throughput jumping, object exchanges spiking during
//! migration then dropping, and the multi-partition percentage collapsing.
//!
//! Prints three per-second series: transactions/s, objects exchanged/s,
//! and % multi-partition commands.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{tpcc_cluster, Placement, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::tpcc::{self, TpccWorkload};

fn main() {
    let mut setup = TpccSetup::new(4, Mode::Dynastar);
    setup.placement = Placement::Random;
    setup.repartition_threshold = 6_000;
    // The paper's first repartitioning lands around t = 50 s; we scale the
    // run to 80 s with the plan gate at 30 s so the committed binary runs
    // in minutes (the phases and shapes are unchanged).
    setup.min_plan_interval = dynastar_runtime::SimDuration::from_secs(30);
    let mut cluster = tpcc_cluster(&setup);

    let tracker = tpcc::order_tracker();
    // Enough closed-loop terminals to keep the partitions busy.
    for w in 0..setup.scale.warehouses {
        for _ in 0..3 {
            cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
        }
    }

    const RUN_SECS: u64 = 80;
    eprintln!("fig2: running {RUN_SECS}s of simulated time (4 warehouses / 4 partitions, random initial placement)...");
    cluster.run_for(SimDuration::from_secs(RUN_SECS));

    let m = cluster.metrics();
    let tput = m.series(mn::CMD_COMPLETED).map(|s| s.rates_per_sec()).unwrap_or_default();
    // Objects-exchanged is recorded per partition; sum the series.
    let mut objects: Vec<f64> = Vec::new();
    for p in 0..4u32 {
        if let Some(s) = m.series(&mn::partition_objects(p)) {
            for (i, v) in s.rates_per_sec().into_iter().enumerate() {
                if objects.len() <= i {
                    objects.resize(i + 1, 0.0);
                }
                objects[i] += v;
            }
        }
    }
    let multi = m.series(mn::CMD_MULTI).map(|s| s.rates_per_sec()).unwrap_or_default();
    let single = m.series(mn::CMD_SINGLE).map(|s| s.rates_per_sec()).unwrap_or_default();

    println!("\nFigure 2 — TPC-C repartitioning impact (DynaStar, 4 partitions)");
    println!(
        "plans published: {}   total retries: {}\n",
        m.counter(mn::PLANS_PUBLISHED),
        m.counter(mn::CMD_RETRY)
    );
    let rows: Vec<Vec<String>> = (0..RUN_SECS as usize)
        .map(|t| {
            let tp = tput.get(t).copied().unwrap_or(0.0);
            let ob = objects.get(t).copied().unwrap_or(0.0);
            let mu = multi.get(t).copied().unwrap_or(0.0);
            let si = single.get(t).copied().unwrap_or(0.0);
            let pct = if mu + si > 0.0 { 100.0 * mu / (mu + si) } else { 0.0 };
            vec![format!("{t}"), format!("{tp:.0}"), format!("{ob:.0}"), format!("{pct:.1}")]
        })
        .collect();
    print_table(&["t(s)", "txn/s", "objects/s", "%multi-partition"], &rows);

    // Headline shape check mirrored in EXPERIMENTS.md: early vs late.
    let early: f64 = tput.iter().take(20).sum::<f64>() / 20.0;
    let late: f64 = tput.iter().skip(tput.len().saturating_sub(20)).sum::<f64>() / 20.0;
    println!(
        "\nmean txn/s first 20s: {early:.0}   last 20s: {late:.0}   speedup: {:.1}x",
        late / early.max(1.0)
    );
}
