//! Simulator throughput probe and perf-regression harness.
//!
//! Runs the standard TPC-C configuration (the hottest realistic workload:
//! deep object graphs, multi-partition transactions, saturating clients)
//! and reports raw scheduler throughput — events per wall-second, wall
//! seconds per simulated second, heap traffic and peak RSS. Two jobs:
//!
//! 1. **Optimization probe** (default): one run, human-readable output,
//!    with an allocation-counting global allocator whose numbers are
//!    deterministic even when wall-clock jitters.
//! 2. **Regression harness** (`--out` / `--check-against`): machine-
//!    readable `BENCH_perf.json`, and a CI gate that fails when events/s
//!    drops more than 30% below a committed baseline.
//!
//! `--matrix` sweeps seeds × modes in parallel (each point is its own
//! deterministic simulation) and reports the per-config medians.
//!
//! Determinism invariant: `events` and `completed` depend only on
//! (mode, partitions, sim-secs, seed, clients) — never on wall-clock,
//! thread scheduling or build profile. The golden values in
//! `tests/determinism.rs` pin the same property; this probe surfaces it
//! next to the throughput numbers so a perf change that silently alters
//! the schedule is caught immediately.

// The one sanctioned unsafe block in the workspace (workspace lints deny
// unsafe_code): implementing GlobalAlloc to count heap traffic requires
// an unsafe trait impl by definition.
#![allow(unsafe_code)]

use dynastar_bench::setup::{run_parallel, tpcc_cluster, Placement, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::tpcc::{self, TpccWorkload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts heap traffic: a deterministic optimization signal on machines
/// where wall-clock jitters.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static SIZE_BUCKETS: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

thread_local! {
    static IN_SAMPLE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let b = (64 - (layout.size().max(1) as u64).leading_zeros() as usize).min(15);
        SIZE_BUCKETS[b].fetch_add(1, Ordering::Relaxed);
        static SAMPLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if (128..=1024).contains(&layout.size())
            && n.is_multiple_of(500_000)
            && *SAMPLE.get_or_init(|| std::env::var_os("PROBE_SAMPLE_STACKS").is_some())
        {
            IN_SAMPLE.with(|f| {
                if !f.get() {
                    f.set(true);
                    eprintln!(
                        "--- alloc sample ({} B) ---\n{}",
                        layout.size(),
                        std::backtrace::Backtrace::force_capture()
                    );
                    f.set(false);
                }
            });
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// One probe configuration (a matrix cell).
#[derive(Debug, Clone, Copy)]
struct ProbeConfig {
    mode: Mode,
    partitions: u32,
    sim_secs: u64,
    seed: u64,
    clients_per_warehouse: u32,
    exec_workers: u32,
}

/// One probe run's measurements.
#[derive(Debug, Clone)]
struct ProbeResult {
    config: ProbeConfig,
    events: u64,
    completed: u64,
    wall_secs: f64,
    events_per_sec: f64,
    wall_per_sim_sec: f64,
}

fn mode_name(m: Mode) -> &'static str {
    match m {
        Mode::Dynastar => "dynastar",
        Mode::SSmr => "ssmr",
        Mode::DsSmr => "dssmr",
    }
}

fn run_probe(cfg: ProbeConfig) -> ProbeResult {
    let mut setup = TpccSetup::new(cfg.partitions, cfg.mode);
    setup.placement = Placement::Random;
    setup.seed = cfg.seed;
    setup.exec_workers = cfg.exec_workers;
    // Throughput probe, not a repartitioning experiment: pinning the
    // threshold keeps the schedule identical across modes being compared.
    setup.repartition_threshold = u64::MAX;
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for w in 0..setup.scale.warehouses {
        for _ in 0..cfg.clients_per_warehouse {
            cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
        }
    }
    let t0 = std::time::Instant::now();
    cluster.run_for(SimDuration::from_secs(cfg.sim_secs));
    let wall = t0.elapsed().as_secs_f64();
    let events = cluster.sim.events_processed();
    ProbeResult {
        config: cfg,
        events,
        completed: cluster.metrics().counter(mn::CMD_COMPLETED),
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        wall_per_sim_sec: wall / cfg.sim_secs as f64,
    }
}

/// Peak resident set (VmHWM) in kilobytes, if the kernel exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Renders results as the flat JSON the CI gate and EXPERIMENTS.md consume.
/// Hand-rolled: every value is a number or a bare identifier, so there is
/// nothing to escape.
fn to_json(results: &[ProbeResult]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.config;
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"partitions\": {}, \"sim_secs\": {}, \"seed\": {}, \
             \"clients_per_warehouse\": {}, \"exec_workers\": {}, \"events\": {}, \"completed\": {}, \
             \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}, \"wall_per_sim_sec\": {:.4}}}{}\n",
            mode_name(c.mode),
            c.partitions,
            c.sim_secs,
            c.seed,
            c.clients_per_warehouse,
            c.exec_workers,
            r.events,
            r.completed,
            r.wall_secs,
            r.events_per_sec,
            r.wall_per_sim_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let best = results.iter().map(|r| r.events_per_sec).fold(0.0f64, f64::max);
    out.push_str(&format!("  \"best_events_per_sec\": {best:.0},\n"));
    match peak_rss_kb() {
        Some(kb) => out.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
        None => out.push_str("  \"peak_rss_kb\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Pulls `"best_events_per_sec": N` out of a baseline JSON without a JSON
/// parser — the file is generated by [`to_json`], so the key appears once.
fn parse_best(json: &str) -> Option<f64> {
    let idx = json.find("\"best_events_per_sec\"")?;
    let rest = &json[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: probe_perf [--mode dynastar|ssmr] [--partitions N] [--sim-secs N] [--seed N]\n\
         \x20                 [--clients N] [--exec-workers N] [--matrix] [--out FILE] [--check-against FILE]\n\
         \n\
         --matrix          sweep seeds 1..=3 x modes in parallel, report all points\n\
         --out FILE        write machine-readable BENCH_perf.json\n\
         --check-against FILE  exit 1 if events/s fell >30% below the baseline file"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = ProbeConfig {
        mode: Mode::Dynastar,
        partitions: 4,
        sim_secs: 10,
        seed: 1,
        clients_per_warehouse: 6,
        exec_workers: 1,
    };
    let mut matrix = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--mode" => {
                cfg.mode = match val() {
                    "dynastar" => Mode::Dynastar,
                    "ssmr" => Mode::SSmr,
                    "dssmr" => Mode::DsSmr,
                    _ => usage(),
                }
            }
            "--partitions" => cfg.partitions = val().parse().unwrap_or_else(|_| usage()),
            "--sim-secs" => cfg.sim_secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients_per_warehouse = val().parse().unwrap_or_else(|_| usage()),
            "--exec-workers" => cfg.exec_workers = val().parse().unwrap_or_else(|_| usage()),
            "--matrix" => matrix = true,
            "--out" => out_path = Some(val().to_owned()),
            "--check-against" => check_path = Some(val().to_owned()),
            _ => usage(),
        }
    }

    let results = if matrix {
        let points: Vec<ProbeConfig> = [Mode::Dynastar, Mode::SSmr]
            .iter()
            .flat_map(|&mode| (1u64..=3).map(move |seed| ProbeConfig { mode, seed, ..cfg }))
            .collect();
        run_parallel(points, 0, run_probe)
    } else {
        vec![run_probe(cfg)]
    };

    for r in &results {
        let c = &r.config;
        println!(
            "{} sim-s took {:.1} wall-s; events={} ({:.0}/s); completed={}",
            c.sim_secs, r.wall_secs, r.events, r.events_per_sec, r.completed
        );
        if matrix {
            println!(
                "  config: mode={} partitions={} seed={}",
                mode_name(c.mode),
                c.partitions,
                c.seed
            );
        }
    }
    if let Some(kb) = peak_rss_kb() {
        println!("peak RSS: {} MB", kb / 1024);
    }
    println!(
        "allocs={} ({} MB)",
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed) / (1 << 20)
    );
    for (i, b) in SIZE_BUCKETS.iter().enumerate() {
        let n = b.load(Ordering::Relaxed);
        if n > 0 {
            println!("  <= {:>6} B: {n}", 1u64 << i);
        }
    }

    if let Some(path) = out_path {
        std::fs::write(&path, to_json(&results)).expect("write BENCH_perf.json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base =
            parse_best(&baseline).unwrap_or_else(|| panic!("no best_events_per_sec in {path}"));
        let now = results.iter().map(|r| r.events_per_sec).fold(0.0f64, f64::max);
        let floor = base * 0.70;
        println!("perf gate: current {now:.0}/s vs baseline {base:.0}/s (floor {floor:.0}/s)");
        if now < floor {
            eprintln!("perf gate FAILED: events/s regressed more than 30% below baseline");
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}
