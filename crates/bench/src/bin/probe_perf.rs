use dynastar_bench::setup::{tpcc_cluster, Placement, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::tpcc::{self, TpccWorkload};
use std::sync::Arc;

fn main() {
    let mut setup = TpccSetup::new(4, Mode::Dynastar);
    setup.placement = Placement::Random;
    setup.repartition_threshold = u64::MAX;
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for w in 0..setup.scale.warehouses {
        for _ in 0..6 {
            cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
        }
    }
    let t0 = std::time::Instant::now();
    cluster.run_for(SimDuration::from_secs(10));
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "10 sim-s took {:.1} wall-s; events={} ({:.0}/s); completed={}",
        wall,
        cluster.sim.events_processed(),
        cluster.sim.events_processed() as f64 / wall,
        cluster.metrics().counter(mn::CMD_COMPLETED)
    );
}
