//! Diagnostic probe for the crash-recovery nemesis (not a paper
//! experiment): runs a seeded randomized fault schedule — crashes,
//! restarts, disconnects, reconnects, at most one faulty replica per
//! group at a time — against a Dynastar cluster and reports the fault,
//! recovery and transport counters. The schedule and the run are fully
//! deterministic: `probe_nemesis [cluster_seed] [nemesis_seed]` prints
//! identical output on every invocation with the same seeds.
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::nemesis::{FaultKind, NemesisConfig, NemesisPlan};
use dynastar_runtime::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

struct Load {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    completed: Arc<Mutex<u32>>,
}

impl Workload<Counters> for Load {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = (a + 1 + rng.gen_range(0..self.vars - 1)) % self.vars;
            vars.push(VarId(b));
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(&mut self, _now: SimTime, _cmd: &Command<Counters>, reply: Option<&i64>) {
        if reply.is_some() {
            *self.completed.lock().unwrap() += 1;
        }
    }
}

fn seed_arg(arg: Option<String>) -> u64 {
    match arg {
        None => 7,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("error: seed {s:?} is not a u64");
            eprintln!("usage: probe_nemesis [cluster_seed] [nemesis_seed]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cluster_seed = seed_arg(args.next());
    let nemesis_seed = seed_arg(args.next());

    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: cluster_seed,
        repartition_threshold: u64::MAX,
        // Modelled per-command CPU keeps traffic in flight while the
        // fault schedule runs, so faults land on a busy cluster.
        exec: dynastar_core::ExecConfig::serial(SimDuration::from_millis(200)),
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..20u64 {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let completed = Arc::new(Mutex::new(0));
    for _ in 0..4 {
        cluster.add_client(Load {
            vars: 20,
            remaining: 60,
            multi_pct: 30,
            completed: Arc::clone(&completed),
        });
    }

    let cfg = NemesisConfig {
        seed: nemesis_seed,
        start: SimTime::from_secs(2),
        end: SimTime::from_secs(45),
        mean_interval: SimDuration::from_secs(6),
        min_downtime: SimDuration::from_millis(400),
        max_downtime: SimDuration::from_secs(3),
        grace: SimDuration::from_secs(3),
        crash_pct: 50,
        ..NemesisConfig::default()
    };
    let plan = NemesisPlan::generate(&cfg, cluster.groups());
    println!(
        "nemesis schedule: seed={} faults={} ({} crash/restart, {} disconnect/reconnect)",
        nemesis_seed,
        plan.events.len(),
        plan.crash_count(),
        plan.disconnect_count(),
    );
    for e in &plan.events {
        let kind = match e.kind {
            FaultKind::Crash => "crash     ",
            FaultKind::Disconnect => "disconnect",
        };
        println!(
            "  {:>7.3}s {} node {:?} (repair at {:>7.3}s)",
            e.at.as_micros() as f64 / 1e6,
            kind,
            e.node,
            e.repair_at.as_micros() as f64 / 1e6,
        );
    }
    plan.apply(&mut cluster.sim);
    cluster.sim.metrics_mut().incr_counter(mn::FAULT_CRASHES, plan.crash_count());
    cluster.sim.metrics_mut().incr_counter(mn::FAULT_RESTARTS, plan.crash_count());
    cluster.sim.metrics_mut().incr_counter(mn::FAULT_DISCONNECTS, plan.disconnect_count());
    cluster.sim.metrics_mut().incr_counter(mn::FAULT_RECONNECTS, plan.disconnect_count());

    for slice in 0..10 {
        cluster.run_for(SimDuration::from_secs(10));
        let m = cluster.metrics();
        println!(
            "t={:>3}s done={:>3} retries={} timeouts={} recoveries={} elections={} retx={} resets={} abandoned={}",
            (slice + 1) * 10,
            *completed.lock().unwrap(),
            m.counter(mn::CMD_RETRY),
            m.counter(mn::CMD_TIMEOUT),
            m.counter(mn::RECOVERY_COMPLETIONS),
            m.counter(mn::LEADER_ELECTIONS),
            m.counter(mn::NET_RETRANSMISSIONS),
            m.counter(mn::NET_STREAM_RESETS),
            m.counter(mn::NET_FRAMES_ABANDONED),
        );
    }

    let m = cluster.metrics();
    println!("\nfault/recovery report");
    println!(
        "  faults injected:    {} crashes, {} disconnects",
        m.counter(mn::FAULT_CRASHES),
        m.counter(mn::FAULT_DISCONNECTS)
    );
    println!(
        "  repairs scheduled:  {} restarts, {} reconnects",
        m.counter(mn::FAULT_RESTARTS),
        m.counter(mn::FAULT_RECONNECTS)
    );
    println!(
        "  recoveries:         {} completed from {} donated snapshots ({} elements)",
        m.counter(mn::RECOVERY_COMPLETIONS),
        m.counter(mn::RECOVERY_SNAPSHOTS),
        m.counter(mn::RECOVERY_SNAPSHOT_ELEMENTS)
    );
    println!("  leader elections:   {}", m.counter(mn::LEADER_ELECTIONS));
    println!(
        "  transport:          {} retransmissions, {} stream resets, {} frames abandoned",
        m.counter(mn::NET_RETRANSMISSIONS),
        m.counter(mn::NET_STREAM_RESETS),
        m.counter(mn::NET_FRAMES_ABANDONED)
    );
    println!("  commands completed: {}", *completed.lock().unwrap());
}
