//! Figure 9 (robustness suite): migration interference under adversarial
//! workloads.
//!
//! Every scenario runs twice in the same process with identical seeds:
//!
//! * **staged** — chunked, rate-limited migration with per-chunk ack
//!   timeouts and exponential backoff, plus client retry backpressure;
//! * **stall** — the classic single-shipment path under the *same*
//!   bandwidth model, so a plan's whole transfer charges the source
//!   replica's CPU/NIC at once (the unthrottled baseline).
//!
//! The interesting number is the foreground-throughput **dip**: how far the
//! worst post-warmup second falls below the run's median. Staged migration
//! should bound the dip; the stall baseline pays it all at once. Scenarios:
//!
//! * `flash_crowd` — a celebrity post yanks the hot spot onto one user;
//! * `diurnal`    — the hot quarter of the keyspace rotates on a period;
//! * `zipf_ramp`  — the skew parameter sharpens mid-run (0.2 → 0.95);
//! * `churn`      — flash crowd plus crash-restart waves and degraded
//!   links timed to overlap the migrations they trigger;
//! * `chained_move` — the hot half of the keyspace rotates once per plan
//!   interval while a mid-run brownout degrades every link between two
//!   partitions, so transfers give up and revert while later plans have
//!   already chained the same keys onward (the plan-history replay path).
//!
//! Flags, following `fig7_partitioner_scaling`:
//!
//! * `--smoke`          small sizes / short runs (CI workload);
//! * `--scenario NAME`  run one scenario instead of all four;
//! * `--out FILE`       write machine-readable `BENCH_migration.json`;
//! * `--gate-errors`    exit 1 if any run saw a client-visible command
//!   error (`cmd.failed` — stale routing must retry, never surface).

use std::collections::BTreeMap;
use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, run_parallel, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::server::ServerConfig;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, CommandKind, LocKey, Mode, PartitionId, VarId,
};
use dynastar_runtime::nemesis::NemesisPlan;
use dynastar_runtime::{Metrics, SimDuration, SimTime};
use dynastar_workloads::chirper::ChirperMix;
use dynastar_workloads::scenarios::{
    churn_nemesis, flash_crowd, migration_brownout, DiurnalRotation, ScenarioWorkload, ZipfRamp,
};
use rand::rngs::StdRng;

const SEED: u64 = 9;

/// How a run pays for plan-triggered state migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Chunked + rate-limited + acked, with client retry backpressure.
    Staged,
    /// Single shipment under the same bandwidth model: the whole transfer
    /// charges the source replica at once.
    Stall,
}

impl Policy {
    fn name(self) -> &'static str {
        match self {
            Policy::Staged => "staged",
            Policy::Stall => "stall",
        }
    }

    /// Both policies share the bandwidth model (8 KiB/var over a 1 MiB/s
    /// migration link — 8 ms per variable), so the comparison isolates
    /// *how* the transfer cost is paid, not how large it is: a plan moving
    /// a few hundred keys costs the stall baseline a multi-second outage
    /// paid upfront, while staged migration paces the same bytes.
    fn server(self) -> ServerConfig {
        ServerConfig {
            staged_migration: self == Policy::Staged,
            migration_chunk_vars: 4,
            migration_var_bytes: 8 * 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 6,
            // The cluster-wide scheduler: at most two transfers in flight
            // per source→destination link; the oracle's hot-first move
            // order decides who goes first and deferred keys are released
            // as slots free. (Ignored by the stall baseline, which never
            // stages.)
            migration_max_inflight_per_link: 4,
            ..ServerConfig::default()
        }
    }

    fn client_backoff(self) -> SimDuration {
        match self {
            Policy::Staged => SimDuration::from_millis(2),
            Policy::Stall => SimDuration::ZERO,
        }
    }
}

const SCENARIOS: &[&str] = &["flash_crowd", "diurnal", "zipf_ramp", "churn", "chained_move"];

/// Scenario dimensions (full vs `--smoke`).
#[derive(Debug, Clone, Copy)]
struct Params {
    partitions: u32,
    users: usize,
    domain: u64,
    clients: usize,
    secs: u64,
    /// Seconds excluded from the dip window at the start of each run
    /// (random initial placement; the first repartition is startup, not
    /// interference).
    warmup: usize,
    chirper_threshold: u64,
    counters_threshold: u64,
    plan_interval: SimDuration,
    waves: u32,
}

impl Params {
    fn new(smoke: bool) -> Self {
        if smoke {
            Params {
                partitions: 2,
                users: 400,
                domain: 200,
                clients: 3,
                secs: 24,
                warmup: 6,
                chirper_threshold: 1_500,
                counters_threshold: 800,
                plan_interval: SimDuration::from_secs(5),
                waves: 2,
            }
        } else {
            Params {
                partitions: 4,
                users: 2_000,
                domain: 800,
                clients: 6,
                secs: 120,
                warmup: 15,
                chirper_threshold: 6_000,
                counters_threshold: 3_000,
                plan_interval: SimDuration::from_secs(20),
                waves: 3,
            }
        }
    }
}

/// The counters application the keyspace scenarios drive: one variable per
/// locality key, commands add to every named variable.
struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

/// One (scenario, policy) run's measurements.
struct RunResult {
    scenario: &'static str,
    policy: &'static str,
    completed: u64,
    errors: u64,
    retries: u64,
    backoffs: u64,
    plans: u64,
    keys_staged: u64,
    chunks_sent: u64,
    chunk_retries: u64,
    reverts: u64,
    deferred: u64,
    released: u64,
    median_tput: f64,
    worst_tput: f64,
    dip_pct: f64,
}

/// Summarizes a finished cluster's metrics: the per-second completed
/// series gives the dip (worst post-warmup second vs the median), and the
/// counters tell the migration story.
fn collect(scenario: &'static str, policy: Policy, m: &Metrics, p: &Params) -> RunResult {
    let series = m.series(mn::CMD_COMPLETED).map(|s| s.rates_per_sec()).unwrap_or_default();
    // Drop the trailing (possibly partial) second and the warmup.
    let end = series.len().saturating_sub(1);
    let window: &[f64] = if end > p.warmup { &series[p.warmup..end] } else { &series[..end] };
    let mut sorted = window.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    let worst = sorted.first().copied().unwrap_or(0.0);
    let dip_pct = if median > 0.0 { (100.0 * (1.0 - worst / median)).max(0.0) } else { 0.0 };
    RunResult {
        scenario,
        policy: policy.name(),
        completed: m.counter(mn::CMD_COMPLETED),
        errors: m.counter(mn::CMD_FAILED),
        retries: m.counter(mn::CMD_RETRY),
        backoffs: m.counter(mn::CMD_RETRY_BACKOFF),
        plans: m.counter(mn::PLANS_PUBLISHED),
        keys_staged: m.counter(mn::MIGRATION_KEYS_STAGED),
        chunks_sent: m.counter(mn::MIGRATION_CHUNKS_SENT),
        chunk_retries: m.counter(mn::MIGRATION_CHUNK_RETRIES),
        reverts: m.counter(mn::MIGRATION_REVERTS),
        deferred: m.counter(mn::MIGRATION_DEFERRED),
        released: m.counter(mn::MIGRATION_RELEASED),
        median_tput: median,
        worst_tput: worst,
        dip_pct,
    }
}

/// Flash-crowd and churn scenarios: the social network under a celebrity
/// post, optionally with crash waves + degraded links overlapping the
/// migrations the crowd triggers.
fn run_chirper(scenario: &'static str, churn: bool, policy: Policy, p: &Params) -> RunResult {
    let mut setup = ChirperSetup::new(p.partitions, Mode::Dynastar);
    setup.users = p.users;
    setup.seed = SEED;
    setup.min_plan_interval = p.plan_interval;
    setup.repartition_threshold = p.chirper_threshold;
    setup.server = policy.server();
    setup.client_retry_backoff = policy.client_backoff();
    let (mut cluster, graph) = chirper_cluster(&setup);
    // The celebrity is an existing unremarkable user (fewest followers at
    // t=0), as in fig6.
    let celebrity = {
        let g = graph.lock().unwrap();
        (0..g.users() as u64).min_by_key(|&u| g.followers_of(u).len()).unwrap_or(0)
    };
    let at = SimTime::from_secs(p.secs / 3);
    for _ in 0..p.clients {
        cluster.add_client(flash_crowd(
            Arc::clone(&graph),
            0.95,
            ChirperMix::MIX,
            celebrity,
            40,
            at,
        ));
    }
    if churn {
        let cfg = churn_nemesis(
            SEED ^ 0xC0FFEE,
            SimTime::from_secs(p.secs / 4),
            SimTime::from_secs(p.secs * 3 / 4),
            p.waves,
        );
        let plan = NemesisPlan::generate(&cfg, cluster.groups());
        plan.apply(&mut cluster.sim);
    }
    cluster.run_for(SimDuration::from_secs(p.secs));
    collect(scenario, policy, cluster.metrics(), p)
}

/// Diurnal-rotation and Zipf-ramp scenarios: a counters keyspace whose
/// access pattern drifts under the partitioner's feet. Commands pair each
/// drawn rank with its successor so the co-access graph chases the drift.
fn run_counters(scenario: &'static str, ramp: bool, policy: Policy, p: &Params) -> RunResult {
    let config = ClusterConfig {
        partitions: p.partitions,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: SEED,
        repartition_threshold: p.counters_threshold,
        min_plan_interval: p.plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(50),
        exec: dynastar_core::ExecConfig::serial(SimDuration::from_micros(150)),
        server: policy.server(),
        client_retry_backoff: policy.client_backoff(),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..p.domain {
        b.place(LocKey(v), PartitionId((v % p.partitions as u64) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let domain = p.domain;
    let make = move |rank: u64, _rng: &mut StdRng| CommandKind::<Counters>::Access {
        op: 1,
        vars: vec![VarId(rank), VarId((rank + 1) % domain)],
    };
    for _ in 0..p.clients {
        if ramp {
            let pattern = ZipfRamp::new(
                domain,
                0.2,
                0.95,
                SimTime::from_secs(p.secs / 6),
                SimTime::from_secs(p.secs * 2 / 3),
            );
            cluster.add_client(ScenarioWorkload::new(pattern, make));
        } else {
            let pattern = DiurnalRotation::new(
                domain,
                0.95,
                SimDuration::from_secs((p.secs / 6).max(1)),
                domain / 4,
            );
            cluster.add_client(ScenarioWorkload::new(pattern, make));
        }
    }
    cluster.run_for(SimDuration::from_secs(p.secs));
    collect(scenario, policy, cluster.metrics(), p)
}

/// Chained-migration scenario: the hot half of a counters keyspace rotates
/// once per plan interval, so consecutive plans keep re-routing the same
/// keys while the previous transfer may still be in flight (a move A→B
/// chained onward to B→C). Mid-run, a [`migration_brownout`] degrades
/// every link between partitions 0 and 1 long enough for chunk retries to
/// exhaust and give up, so their reverts must compose with the chained
/// moves via plan-history replay. Correctness shows up in the error gate:
/// all the routing confusion must surface as retries, never failures.
///
/// Unlike the other counters scenarios, commands touch a *single* key and
/// keys start out in contiguous blocks: single-partition commands never
/// cross the browned-out inter-group mesh, so the foreground keeps
/// running, the hint stream keeps feeding the oracle, and plans keep
/// landing *during* the brownout — which is what pushes transfers into
/// it. Migration pressure comes from vertex-weight imbalance alone: every
/// rotation parks the Zipf head on one contiguous block and the
/// partitioner must spread it again.
fn run_chained(scenario: &'static str, policy: Policy, p: &Params) -> RunResult {
    // At least three partitions: the brownout only degrades the 0 ↔ 1
    // mesh, so partition 2+ keeps absorbing traffic and the oracle keeps
    // planning, while moves can still chain onward to a healthy partition.
    let partitions = p.partitions.max(3);
    // Shorter retry ladder (~1.5 s at 100 ms timeout × 3 retries) so the
    // 2 s one-way brownout delay below outlasts it and forces give-ups.
    let mut server = policy.server();
    server.migration_max_retries = 3;
    let config = ClusterConfig {
        partitions,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: SEED,
        repartition_threshold: p.counters_threshold,
        min_plan_interval: p.plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(50),
        exec: dynastar_core::ExecConfig::serial(SimDuration::from_micros(150)),
        server,
        client_retry_backoff: policy.client_backoff(),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..p.domain {
        b.place(LocKey(v), PartitionId((v * partitions as u64 / p.domain) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let make = move |rank: u64, _rng: &mut StdRng| CommandKind::<Counters>::Access {
        op: 1,
        vars: vec![VarId(rank)],
    };
    for _ in 0..p.clients {
        // Rotating by half the domain every plan interval means each plan
        // finds the keys it just placed hot somewhere else again — the
        // chained-move generator.
        let pattern = DiurnalRotation::new(p.domain, 0.95, p.plan_interval, p.domain / 2);
        cluster.add_client(ScenarioWorkload::new(pattern, make));
    }
    // Brown out the partition-0 ↔ partition-1 mesh for half the run with
    // pure delay, zero loss. Partial loss is laundered away by the 3×3
    // chunk/ack fan-out, and total loss stalls the atomic-multicast
    // timestamp exchange (freezing both groups' delivery pipelines). A
    // 2 s one-way delay instead puts a chunk's ack ~4 s behind its send:
    // sources exhaust the shortened retry ladder and revert while the
    // destination — which still receives every chunk, late but never
    // lost — completes staging and submits its `MigrationDone`. The two
    // race in the total order and plan-history replay settles the loser
    // as stale.
    let (ga, gb) = {
        let groups = cluster.groups();
        (groups[0].clone(), groups[1].clone())
    };
    let plan = migration_brownout(
        &ga,
        &gb,
        SimTime::from_secs(p.secs / 4),
        SimTime::from_secs(p.secs * 3 / 4),
        SimDuration::from_secs(2),
        0,
    );
    plan.apply(&mut cluster.sim);
    cluster.run_for(SimDuration::from_secs(p.secs));
    collect(scenario, policy, cluster.metrics(), p)
}

fn run_one(scenario: &'static str, policy: Policy, p: &Params) -> RunResult {
    match scenario {
        "flash_crowd" => run_chirper(scenario, false, policy, p),
        "diurnal" => run_counters(scenario, false, policy, p),
        "zipf_ramp" => run_counters(scenario, true, policy, p),
        "churn" => run_chirper(scenario, true, policy, p),
        "chained_move" => run_chained(scenario, policy, p),
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Hand-rolled flat JSON (every value is a number or bare word, nothing to
/// escape), one line per run like `fig7`'s `to_json`.
fn to_json(results: &[RunResult]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"completed\": {}, \
             \"errors\": {}, \"retries\": {}, \"backoffs\": {}, \"plans\": {}, \
             \"keys_staged\": {}, \"chunks_sent\": {}, \"chunk_retries\": {}, \
             \"reverts\": {}, \"deferred\": {}, \"released\": {}, \
             \"median_tput\": {:.1}, \"worst_tput\": {:.1}, \
             \"dip_pct\": {:.1}}}{}\n",
            r.scenario,
            r.policy,
            r.completed,
            r.errors,
            r.retries,
            r.backoffs,
            r.plans,
            r.keys_staged,
            r.chunks_sent,
            r.chunk_retries,
            r.reverts,
            r.deferred,
            r.released,
            r.median_tput,
            r.worst_tput,
            r.dip_pct,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    out.push_str(&format!("  \"total_errors\": {errors}\n}}\n"));
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: fig9_migration_interference [--smoke] [--scenario NAME] [--out FILE] \
         [--gate-errors]\n\
         \n\
         --smoke          small sizes / short runs (CI gate workload)\n\
         --scenario NAME  one of flash_crowd|diurnal|zipf_ramp|churn|chained_move \
         (default: all)\n\
         --out FILE       write machine-readable BENCH_migration.json\n\
         --gate-errors    exit 1 if any run surfaced a client-visible command error"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut gate_errors = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--scenario" => only = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gate-errors" => gate_errors = true,
            _ => usage(),
        }
    }
    let scenarios: Vec<&'static str> = match only.as_deref() {
        None => SCENARIOS.to_vec(),
        Some(name) => match SCENARIOS.iter().find(|s| **s == name) {
            Some(s) => vec![*s],
            None => usage(),
        },
    };

    let p = Params::new(smoke);
    eprintln!(
        "fig9: {} scenario(s) x {{staged, stall}}, {}s each{}...",
        scenarios.len(),
        p.secs,
        if smoke { " (smoke)" } else { "" }
    );
    let jobs: Vec<(&'static str, Policy)> =
        scenarios.iter().flat_map(|s| [(*s, Policy::Staged), (*s, Policy::Stall)]).collect();
    let results = run_parallel(jobs, 0, |(s, pol)| run_one(s, pol, &p));

    println!("\nFigure 9 — migration interference under adversarial scenarios");
    println!("(dip = how far the worst post-warmup second falls below the median)\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.policy.to_string(),
                format!("{}", r.completed),
                format!("{:.0}", r.median_tput),
                format!("{:.0}", r.worst_tput),
                format!("{:.1}", r.dip_pct),
                format!("{}", r.errors),
                format!("{}", r.retries),
                format!("{}", r.keys_staged),
                format!("{}", r.chunk_retries),
                format!("{}", r.reverts),
                format!("{}", r.deferred),
                format!("{}", r.plans),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario",
            "policy",
            "done",
            "med/s",
            "worst/s",
            "dip%",
            "errors",
            "retries",
            "staged",
            "chunk-rtx",
            "reverts",
            "defer",
            "plans",
        ],
        &rows,
    );
    for s in &scenarios {
        let staged = results.iter().find(|r| r.scenario == *s && r.policy == "staged");
        let stall = results.iter().find(|r| r.scenario == *s && r.policy == "stall");
        if let (Some(a), Some(b)) = (staged, stall) {
            println!("{:<12} staged dip {:>5.1}%  vs  stall dip {:>5.1}%", s, a.dip_pct, b.dip_pct);
        }
    }

    if let Some(path) = out_path {
        std::fs::write(&path, to_json(&results)).expect("write BENCH_migration.json");
        println!("wrote {path}");
    }
    if gate_errors {
        let errors: u64 = results.iter().map(|r| r.errors).sum();
        if errors > 0 {
            eprintln!("migration gate FAILED: {errors} client-visible command error(s)");
            std::process::exit(1);
        }
        println!("migration gate passed: zero client-visible errors");
    }
}
