//! Figure 6: adaptation to a dynamic workload.
//!
//! Chirper runs from t = 0; a celebrity appears at t = 200 s (users rush
//! to follow them, and the celebrity posts a lot). Two systems:
//!
//! * (a) DynaStar, starting from a *random* placement — its first
//!   repartitioning fixes the initial scatter, a later one adapts to the
//!   celebrity;
//! * (b) S-SMR\* with the pre-optimized static placement — initially great,
//!   but it cannot adapt once the workload shifts.
//!
//! Prints throughput, % multi-partition and objects-exchanged series for
//! both systems.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const RUN_SECS: u64 = 120;
const CELEBRITY_AT: u64 = 60;
const CLIENTS: usize = 6;
const PARTITIONS: u32 = 4;

struct SeriesSet {
    tput: Vec<f64>,
    multi_pct: Vec<f64>,
    objects: Vec<f64>,
    plans: u64,
}

fn run(mode: Mode) -> SeriesSet {
    run_batched(mode, BatchConfig::UNBATCHED)
}

fn run_batched(mode: Mode, batch: BatchConfig) -> SeriesSet {
    let mut setup = ChirperSetup::new(PARTITIONS, mode);
    setup.batch = batch;
    if mode == Mode::Dynastar {
        // Repartition when enough workload change accumulates, at most
        // every 50 s (first fix ~50 s, celebrity adaptation ~250 s).
        setup.repartition_threshold = 6_000;
        setup.min_plan_interval = dynastar_runtime::SimDuration::from_secs(25);
    }
    let (mut cluster, graph) = chirper_cluster(&setup);
    // The "new celebrity": an existing, unremarkable user who suddenly
    // becomes popular (the id with the *fewest* followers at t=0).
    let celebrity = {
        let g = graph.lock().unwrap();
        (0..g.users() as u64).min_by_key(|&u| g.followers_of(u).len()).unwrap_or(0)
    };
    for _ in 0..CLIENTS {
        cluster.add_client(
            ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX)
                .with_celebrity(celebrity, 40)
                .with_celebrity_after(SimTime::from_secs(CELEBRITY_AT)),
        );
    }
    cluster.run_for(SimDuration::from_secs(RUN_SECS));
    let m = cluster.metrics();
    let take =
        |name: &str| -> Vec<f64> { m.series(name).map(|s| s.rates_per_sec()).unwrap_or_default() };
    let tput = take(mn::CMD_COMPLETED);
    let multi = take(mn::CMD_MULTI);
    let single = take(mn::CMD_SINGLE);
    // Objects-exchanged is recorded per partition; sum the series.
    let mut objects: Vec<f64> = Vec::new();
    for p in 0..PARTITIONS {
        if let Some(s) = m.series(&mn::partition_objects(p)) {
            for (i, v) in s.rates_per_sec().into_iter().enumerate() {
                if objects.len() <= i {
                    objects.resize(i + 1, 0.0);
                }
                objects[i] += v;
            }
        }
    }
    let multi_pct: Vec<f64> = (0..RUN_SECS as usize)
        .map(|t| {
            let mu = multi.get(t).copied().unwrap_or(0.0);
            let si = single.get(t).copied().unwrap_or(0.0);
            if mu + si > 0.0 {
                100.0 * mu / (mu + si)
            } else {
                0.0
            }
        })
        .collect();
    SeriesSet { tput, multi_pct, objects, plans: m.counter(mn::PLANS_PUBLISHED) }
}

fn main() {
    eprintln!(
        "fig6: running DynaStar (random start) for {RUN_SECS}s, celebrity at {CELEBRITY_AT}s..."
    );
    let dynastar = run(Mode::Dynastar);
    eprintln!("fig6: running S-SMR* (optimized static) ...");
    let ssmr = run(Mode::SSmr);

    println!("\nFigure 6 — dynamic workload (celebrity at t={CELEBRITY_AT}s)");
    println!("DynaStar plans published: {}   S-SMR plans: {}\n", dynastar.plans, ssmr.plans);
    // 10-second aggregate rows keep the table readable.
    let mut rows = Vec::new();
    let window = 10usize;
    let avg = |v: &[f64], t: usize| -> f64 {
        let s: f64 = v.iter().skip(t).take(window).sum();
        s / window as f64
    };
    let mut t = 0usize;
    while t < RUN_SECS as usize {
        rows.push(vec![
            format!("{t}"),
            format!("{:.0}", avg(&dynastar.tput, t)),
            format!("{:.1}", avg(&dynastar.multi_pct, t)),
            format!("{:.0}", avg(&dynastar.objects, t)),
            format!("{:.0}", avg(&ssmr.tput, t)),
            format!("{:.1}", avg(&ssmr.multi_pct, t)),
            format!("{:.0}", avg(&ssmr.objects, t)),
        ]);
        t += window;
    }
    print_table(
        &["t(s)", "DS tput", "DS %multi", "DS obj/s", "S* tput", "S* %multi", "S* obj/s"],
        &rows,
    );
    println!("\npaper shape: DynaStar starts below S-SMR*, overtakes after its first repartition,");
    println!("dips when the celebrity appears, recovers after the next repartition; S-SMR* cannot adapt.");

    // Optional extra: does the adaptation story survive a batched ordering
    // pipeline? (pass --batch-sweep). Reports whole-run totals per batch
    // size; the five-phase shape is unchanged, only absolute rates move.
    if std::env::args().any(|a| a == "--batch-sweep") {
        println!("\n== batch-size sweep (DynaStar, dynamic workload, window 1) ==");
        let mut rows = Vec::new();
        for &mb in &[1usize, 8] {
            eprintln!("fig6 [batch sweep]: max_batch = {mb}...");
            let batch = BatchConfig { max_batch: mb, max_batch_delay_ticks: 2, window: 1 };
            let s = run_batched(Mode::Dynastar, batch);
            let total: f64 = s.tput.iter().sum();
            rows.push(vec![
                format!("{mb}"),
                format!("{:.0}", total / RUN_SECS as f64),
                format!("{}", s.plans),
            ]);
        }
        print_table(&["max_batch", "mean cps", "plans"], &rows);
    }
}
