//! Figure 3: TPC-C performance scalability.
//!
//! Peak throughput of DynaStar vs S-SMR\* as partitions grow (1 to 16),
//! with the state growing alongside (one warehouse per partition), exactly
//! as in §6.3. S-SMR\* gets the warehouse-aligned static placement;
//! DynaStar starts aligned too but keeps its dynamic machinery (hints,
//! oracle) running.
//!
//! The paper's shape: both scale with partitions; DynaStar tracks the
//! idealized S-SMR\* closely.
//!
//! Flags:
//!
//! * `--max-parts N` sweeps partitions `[1, 2, 4, 8, 16]` up to `N`
//!   (default 4, the quick default; 16 is the paper scale);
//! * `--smoke` shortens warmup/measure so CI finishes fast;
//! * `--out FILE` writes machine-readable JSON (one line per point).

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{tpcc_cluster, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::tpcc::{self, TpccWorkload};

const CLIENTS_PER_WAREHOUSE: u32 = 3;

fn peak_tput(partitions: u32, mode: Mode, warmup: u64, measure: u64) -> f64 {
    let setup = TpccSetup::new(partitions, mode);
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for w in 0..setup.scale.warehouses {
        for _ in 0..CLIENTS_PER_WAREHOUSE {
            cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
        }
    }
    cluster.run_for(SimDuration::from_secs(warmup));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(measure));
    cluster.metrics().counter(mn::CMD_COMPLETED) as f64 / measure as f64
}

fn usage() -> ! {
    eprintln!(
        "usage: fig3_tpcc_scalability [--max-parts N] [--smoke] [--out FILE]\n\
         \n\
         --max-parts N  sweep partitions 1,2,4,8,16 up to N   [4]\n\
         --smoke        shortened warmup/measure windows\n\
         --out FILE     write machine-readable JSON"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut max_parts: u32 = 4;
    let mut out_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--max-parts" => {
                max_parts = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (warmup, measure) = if smoke { (1, 2) } else { (3, 6) };
    let sweep: Vec<u32> = [1u32, 2, 4, 8, 16].into_iter().filter(|&k| k <= max_parts).collect();

    println!("Figure 3 — TPC-C scalability (one warehouse per partition, saturating clients)\n");
    // Every (partitions, mode) point is an independent deterministic
    // simulation; fan the whole matrix out across cores and reassemble
    // rows in input order.
    let points: Vec<(u32, Mode)> =
        sweep.iter().flat_map(|&k| [(k, Mode::Dynastar), (k, Mode::SSmr)]).collect();
    let tputs = dynastar_bench::run_parallel(points, 0, |(k, mode)| {
        eprintln!("fig3: running {k} partition(s), {mode:?}...");
        peak_tput(k, mode, warmup, measure)
    });
    let mut rows = Vec::new();
    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, &k) in sweep.iter().enumerate() {
        let (dynastar, ssmr) = (tputs[2 * i], tputs[2 * i + 1]);
        rows.push(vec![
            format!("{k}"),
            format!("{dynastar:.0}"),
            format!("{ssmr:.0}"),
            format!("{:.2}", dynastar / ssmr.max(1.0)),
        ]);
        json.push_str(&format!(
            "    {{\"partitions\": {k}, \"dynastar_tps\": {dynastar:.0}, \
             \"ssmr_tps\": {ssmr:.0}}}{}\n",
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    print_table(&["partitions", "DynaStar txn/s", "S-SMR* txn/s", "ratio"], &rows);
    println!("\npaper shape: throughput grows with partitions for both; DynaStar ≈ S-SMR*.");
    if let Some(path) = out_path {
        std::fs::write(&path, json).expect("write fig3 json");
        println!("wrote {path}");
    }
}
