//! Figure 3: TPC-C performance scalability.
//!
//! Peak throughput of DynaStar vs S-SMR\* as partitions grow (1, 2, 4, 8),
//! with the state growing alongside (one warehouse per partition), exactly
//! as in §6.3. S-SMR\* gets the warehouse-aligned static placement;
//! DynaStar starts aligned too but keeps its dynamic machinery (hints,
//! oracle) running.
//!
//! The paper's shape: both scale with partitions; DynaStar tracks the
//! idealized S-SMR\* closely.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{tpcc_cluster, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::tpcc::{self, TpccWorkload};

const WARMUP_SECS: u64 = 3;
const MEASURE_SECS: u64 = 6;
const CLIENTS_PER_WAREHOUSE: u32 = 3;

fn peak_tput(partitions: u32, mode: Mode) -> f64 {
    let setup = TpccSetup::new(partitions, mode);
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for w in 0..setup.scale.warehouses {
        for _ in 0..CLIENTS_PER_WAREHOUSE {
            cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
        }
    }
    cluster.run_for(SimDuration::from_secs(WARMUP_SECS));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(MEASURE_SECS));
    cluster.metrics().counter(mn::CMD_COMPLETED) as f64 / MEASURE_SECS as f64
}

fn main() {
    println!("Figure 3 — TPC-C scalability (one warehouse per partition, saturating clients)\n");
    // Every (partitions, mode) point is an independent deterministic
    // simulation; fan the whole matrix out across cores and reassemble
    // rows in input order.
    let points: Vec<(u32, Mode)> =
        [1u32, 2, 4].iter().flat_map(|&k| [(k, Mode::Dynastar), (k, Mode::SSmr)]).collect();
    let tputs = dynastar_bench::run_parallel(points, 0, |(k, mode)| {
        eprintln!("fig3: running {k} partition(s), {mode:?}...");
        peak_tput(k, mode)
    });
    let mut rows = Vec::new();
    for (i, &k) in [1u32, 2, 4].iter().enumerate() {
        let (dynastar, ssmr) = (tputs[2 * i], tputs[2 * i + 1]);
        rows.push(vec![
            format!("{k}"),
            format!("{dynastar:.0}"),
            format!("{ssmr:.0}"),
            format!("{:.2}", dynastar / ssmr.max(1.0)),
        ]);
    }
    print_table(&["partitions", "DynaStar txn/s", "S-SMR* txn/s", "ratio"], &rows);
    println!("\npaper shape: throughput grows with partitions for both; DynaStar ≈ S-SMR*.");
}
