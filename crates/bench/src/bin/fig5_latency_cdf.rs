//! Figure 5: latency CDFs for the mix workload.
//!
//! Cumulative latency distributions of DynaStar and S-SMR\* at a moderate
//! load for 2, 4 and 8 partitions. The paper's shape: S-SMR\* sits left of
//! (below) DynaStar for ~80% of the mass, because DynaStar's multi-
//! partition commands pay for returning borrowed objects.

use std::sync::Arc;

use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const WARMUP_SECS: u64 = 3;
const MEASURE_SECS: u64 = 8;
const CLIENTS: usize = 10;

fn cdf(partitions: u32, mode: Mode) -> Vec<(f64, f64)> {
    let setup = ChirperSetup::new(partitions, mode);
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    cluster.run_until(SimTime::from_secs(WARMUP_SECS));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(MEASURE_SECS));
    cluster
        .metrics()
        .histogram(mn::CMD_LATENCY)
        .map(|h| h.cdf().points().iter().map(|&(lat, f)| (lat.as_millis_f64(), f)).collect())
        .unwrap_or_default()
}

fn main() {
    println!("Figure 5 — latency CDFs, Chirper mix workload\n");
    for &k in &[2u32, 4] {
        eprintln!("fig5: {k} partitions...");
        let dynastar = cdf(k, Mode::Dynastar);
        let ssmr = cdf(k, Mode::SSmr);
        println!("== {k} partitions ==");
        println!("{:>10}  {:>8}   |  {:>10}  {:>8}", "DynaStar ms", "CDF", "S-SMR* ms", "CDF");
        let n = dynastar.len().max(ssmr.len());
        for i in 0..n {
            let d = dynastar
                .get(i)
                .map(|&(l, f)| format!("{l:>10.2}  {f:>8.3}"))
                .unwrap_or_else(|| " ".repeat(20));
            let s = ssmr
                .get(i)
                .map(|&(l, f)| format!("{l:>10.2}  {f:>8.3}"))
                .unwrap_or_else(|| " ".repeat(20));
            println!("{d}   |  {s}");
        }
        // The paper's headline comparison point: latency at the 80th pct.
        let pct80 = |cdf: &[(f64, f64)]| {
            cdf.iter().find(|&&(_, f)| f >= 0.8).map(|&(l, _)| l).unwrap_or(f64::NAN)
        };
        println!("p80: DynaStar {:.2} ms vs S-SMR* {:.2} ms\n", pct80(&dynastar), pct80(&ssmr));
    }
    println!("paper shape: S-SMR* lower latency for ~80% of the distribution.");
}
