//! Figure 10: conflict-aware parallel intra-partition execution.
//!
//! Sweeps worker-pool width × workload conflict rate on a single-partition
//! Chirper deployment where execution — not ordering — is the bottleneck:
//! the per-command service time is raised to 1 ms, consensus batches, and
//! 64 closed-loop clients keep the execution queue deep. The conflict rate
//! is dialed with the Zipf user-selection skew: at high skew most commands
//! touch the same hot users, so a post's write set keeps intersecting the
//! window and the scheduler degrades toward serial; at low skew the
//! 90%-read mix parallelizes almost perfectly.
//!
//! Simulated completions are deterministic per point (no wall-clock in the
//! numbers), so the committed baseline doubles as a schedule pin. Jobs
//! mirror `fig7`/`probe_perf`:
//!
//! * `--out FILE` writes machine-readable `BENCH_exec.json`;
//! * `--check-against FILE` is the CI smoke gate: exit 1 when a point's
//!   commands/sim-s falls more than 30% below the committed baseline;
//! * `--smoke` restricts the sweep to {1, 8} workers at the middle
//!   conflict rate so the CI gate finishes quickly.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, run_parallel, ChirperSetup, Placement};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

/// ≥90%-read mix (the acceptance workload): timelines dominate, posts
/// supply the conflicting writes.
const MIX: ChirperMix = ChirperMix { timeline: 90, post: 10, follow: 0, unfollow: 0 };

/// Closed-loop clients; far more than the widest pool so queue depth, not
/// offered load, limits parallelism.
const CLIENTS: usize = 64;

/// One sweep cell.
#[derive(Debug, Clone, Copy)]
struct Cell {
    workers: u32,
    /// Zipf skew of user selection — the conflict-rate knob.
    theta: f64,
    sim_secs: u64,
}

/// One cell's measurements.
#[derive(Debug, Clone)]
struct Point {
    cell: Cell,
    completed: u64,
    cmds_per_sim_sec: f64,
    exec_parallel: u64,
    exec_serialized: u64,
    exec_window_stall: u64,
}

fn run_point(cell: Cell) -> Point {
    let mut setup = ChirperSetup::new(1, Mode::Dynastar);
    // Pure execution-scaling experiment: one partition, no repartitioning.
    setup.placement = Placement::Aligned;
    setup.repartition_threshold = u64::MAX;
    setup.exec_workers = cell.workers;
    setup.exec_service = SimDuration::from_millis(1);
    setup.batch = BatchConfig { max_batch: 32, max_batch_delay_ticks: 0, window: 0 };
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), cell.theta, MIX));
    }
    cluster.run_for(SimDuration::from_secs(cell.sim_secs));
    let m = cluster.metrics();
    let completed = m.counter(mn::CMD_COMPLETED);
    Point {
        cell,
        completed,
        cmds_per_sim_sec: completed as f64 / cell.sim_secs as f64,
        exec_parallel: m.counter(mn::EXEC_PARALLEL),
        exec_serialized: m.counter(mn::EXEC_SERIALIZED),
        exec_window_stall: m.counter(mn::EXEC_WINDOW_STALL),
    }
}

/// Serial (workers = 1) throughput for `theta` within `points`, if swept.
fn serial_baseline(points: &[Point], theta: f64) -> Option<f64> {
    points.iter().find(|p| p.cell.workers == 1 && p.cell.theta == theta).map(|p| p.cmds_per_sim_sec)
}

/// Renders results as the flat JSON the CI gate and EXPERIMENTS.md consume
/// (hand-rolled like `probe_perf`: every value is a number, nothing to
/// escape). `speedup_vs_serial` is null when the sweep lacks the matching
/// workers = 1 point.
fn to_json(points: &[Point]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, p) in points.iter().enumerate() {
        let c = &p.cell;
        let speedup = serial_baseline(points, c.theta)
            .map(|s| format!("{:.2}", p.cmds_per_sim_sec / s))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"workers\": {}, \"theta\": {:.2}, \"sim_secs\": {}, \"completed\": {}, \
             \"cmds_per_sim_sec\": {:.1}, \"speedup_vs_serial\": {speedup}, \
             \"exec_parallel\": {}, \"exec_serialized\": {}, \"exec_window_stall\": {}}}{}\n",
            c.workers,
            c.theta,
            c.sim_secs,
            p.completed,
            p.cmds_per_sim_sec,
            p.exec_parallel,
            p.exec_serialized,
            p.exec_window_stall,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let best = points
        .iter()
        .filter_map(|p| serial_baseline(points, p.cell.theta).map(|s| p.cmds_per_sim_sec / s))
        .fold(0.0f64, f64::max);
    out.push_str(&format!("  \"best_speedup_vs_serial\": {best:.2}\n"));
    out.push_str("}\n");
    out
}

/// Pulls the `cmds_per_sim_sec` of the baseline run matching `cell` out of
/// a baseline JSON without a JSON parser — the file is generated by
/// [`to_json`], so each run is one line with `workers` and `theta` first.
fn parse_baseline_cps(json: &str, cell: &Cell) -> Option<f64> {
    let idx =
        json.find(&format!("\"workers\": {}, \"theta\": {:.2},", cell.workers, cell.theta))?;
    let line = json[idx..].lines().next()?;
    let key = line.find("\"cmds_per_sim_sec\"")?;
    let rest = &line[key..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: fig10_parallel_execution [--smoke] [--out FILE] [--check-against FILE]\n\
         \n\
         --smoke              only {{1, 8}} workers at the middle conflict rate (CI gate)\n\
         --out FILE           write machine-readable BENCH_exec.json\n\
         --check-against FILE exit 1 if commands/sim-s fell >30% below the baseline file"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--check-against" => check_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let (workers, thetas, sim_secs): (&[u32], &[f64], u64) =
        if smoke { (&[1, 8], &[0.90], 3) } else { (&[1, 2, 4, 8], &[0.20, 0.90, 0.99], 5) };
    println!(
        "Figure 10 — conflict-aware parallel execution ({}% reads, {CLIENTS} clients, 1 ms \
         service, single partition)\n",
        MIX.timeline
    );

    let cells: Vec<Cell> = thetas
        .iter()
        .flat_map(|&theta| workers.iter().map(move |&w| Cell { workers: w, theta, sim_secs }))
        .collect();
    let points = run_parallel(cells, 0, run_point);

    let mut rows = Vec::new();
    for p in &points {
        let speedup = serial_baseline(&points, p.cell.theta)
            .map(|s| format!("{:.2}x", p.cmds_per_sim_sec / s))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            format!("{:.2}", p.cell.theta),
            format!("{}", p.cell.workers),
            format!("{}", p.completed),
            format!("{:.0}", p.cmds_per_sim_sec),
            speedup,
            format!("{}", p.exec_parallel),
            format!("{}", p.exec_serialized),
            format!("{}", p.exec_window_stall),
        ]);
    }
    print_table(
        &[
            "theta",
            "workers",
            "completed",
            "cmds/sim-s",
            "speedup",
            "parallel",
            "serialized",
            "stalls",
        ],
        &rows,
    );
    println!("\nexpected shape: near-linear speedup at low skew under a >=90% read mix;");
    println!("rising skew funnels writes onto hot users, serialized admissions climb");
    println!("and the speedup erodes while the schedule stays deterministic.");

    if let Some(path) = out_path {
        std::fs::write(&path, to_json(&points)).expect("write BENCH_exec.json");
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        // Compare each swept cell against the *same cell* in the baseline —
        // throughput varies hugely across the matrix, so mixing cells would
        // leave no noise headroom (and the numbers are deterministic, so a
        // drop means the schedule itself changed).
        let mut failed = false;
        for p in &points {
            let Some(base) = parse_baseline_cps(&baseline, &p.cell) else {
                println!(
                    "exec gate workers={} theta={:.2}: no baseline in {path}, skipped",
                    p.cell.workers, p.cell.theta
                );
                continue;
            };
            let floor = base * 0.70;
            let verdict = if p.cmds_per_sim_sec < floor { "FAILED" } else { "ok" };
            println!(
                "exec gate workers={} theta={:.2}: current {:.0} cmds/sim-s vs baseline \
                 {base:.0} (floor {floor:.0}) {verdict}",
                p.cell.workers, p.cell.theta, p.cmds_per_sim_sec
            );
            failed |= p.cmds_per_sim_sec < floor;
        }
        if failed {
            eprintln!("exec gate FAILED: commands/sim-s regressed more than 30% below baseline");
            std::process::exit(1);
        }
        println!("exec gate passed");
    }
}
