//! Probe: ordering-batch size sweep on the Figure 4 social workload.
//!
//! Holds the pipelining window fixed (one in-flight consensus instance per
//! leader) and sweeps `max_batch`. With the window pinned, the consensus
//! round-trip is the bottleneck and throughput tracks commands-per-slot:
//! unbatched leaders order one command per round trip, batched leaders
//! drain their whole queue into one instance. The probe asserts a ≥1.5×
//! throughput gain at `max_batch = 8` and that every configuration is
//! seed-deterministic (two runs with one seed produce identical metrics).

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const WARMUP_SECS: u64 = 3;
const MEASURE_SECS: u64 = 6;
const SATURATING_CLIENTS: usize = 12;
const PARTITIONS: u32 = 4;
/// In-flight consensus instances per leader, held constant across the
/// sweep so `max_batch` is the only variable.
const WINDOW: usize = 1;

#[derive(Debug, PartialEq)]
struct Point {
    completed: u64,
    retries: u64,
    mean_latency_us: u64,
    batches: u64,
    batched_cmds: u64,
    flush_full: u64,
    flush_delay: u64,
}

impl Point {
    fn tput(&self) -> f64 {
        self.completed as f64 / MEASURE_SECS as f64
    }

    fn mean_batch(&self) -> f64 {
        self.batched_cmds as f64 / self.batches.max(1) as f64
    }
}

fn run(max_batch: usize) -> Point {
    let mut setup = ChirperSetup::new(PARTITIONS, Mode::Dynastar);
    setup.batch = BatchConfig { max_batch, max_batch_delay_ticks: 0, window: WINDOW };
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..SATURATING_CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    cluster.run_until(SimTime::from_secs(WARMUP_SECS));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(MEASURE_SECS));
    let m = cluster.metrics();
    Point {
        completed: m.counter(mn::CMD_COMPLETED),
        retries: m.counter(mn::CMD_RETRY),
        mean_latency_us: m.histogram(mn::CMD_LATENCY).map(|h| h.mean().as_micros()).unwrap_or(0),
        batches: m.counter(mn::BATCH_FLUSH_FULL) + m.counter(mn::BATCH_FLUSH_DELAY),
        batched_cmds: m.counter(mn::BATCH_COMMANDS),
        flush_full: m.counter(mn::BATCH_FLUSH_FULL),
        flush_delay: m.counter(mn::BATCH_FLUSH_DELAY),
    }
}

fn main() {
    println!(
        "Batching probe — Chirper mix 85/15, {PARTITIONS} partitions, \
         {SATURATING_CLIENTS} clients, window {WINDOW}\n"
    );
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    let mut speedup_at_8 = 0.0f64;
    let mut deterministic = true;
    for &max_batch in &[1usize, 2, 4, 8, 16] {
        eprintln!("probe_batching: max_batch = {max_batch}...");
        let a = run(max_batch);
        let b = run(max_batch);
        if a != b {
            deterministic = false;
            eprintln!(
                "probe_batching: NON-DETERMINISTIC at max_batch = {max_batch}: {a:?} vs {b:?}"
            );
        }
        if max_batch == 1 {
            baseline = a.tput();
        }
        let speedup = a.tput() / baseline.max(1.0);
        if max_batch == 8 {
            speedup_at_8 = speedup;
        }
        rows.push(vec![
            format!("{max_batch}"),
            format!("{:.0}", a.tput()),
            format!("{speedup:.2}x"),
            format!("{:.1}", a.mean_latency_us as f64 / 1000.0),
            format!("{:.2}", a.mean_batch()),
            format!("{}/{}", a.flush_full, a.flush_delay),
            format!("{}", a.retries),
        ]);
    }
    print_table(
        &["max_batch", "cps", "speedup", "lat ms", "mean batch", "full/delay", "retries"],
        &rows,
    );
    println!();
    println!("seed-determinism : {}", if deterministic { "PASS" } else { "FAIL" });
    println!(
        "speedup @ batch 8: {speedup_at_8:.2}x (target >= 1.5x) — {}",
        if speedup_at_8 >= 1.5 { "PASS" } else { "FAIL" }
    );
    if !deterministic || speedup_at_8 < 1.5 {
        std::process::exit(1);
    }
}
