//! Measures the raw event throughput of the simulation kernel with
//! trivial actors (diagnostic tool, not a paper experiment).
use dynastar_runtime::prelude::*;

struct Echo;
impl Actor<u64> for Echo {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
}
struct Starter {
    peer: NodeId,
}
impl Actor<u64> for Starter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for _ in 0..100 {
            ctx.send(self.peer, 1_000_000);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
}

fn main() {
    let mut sim = Simulation::new(SimConfig::default().seed(1));
    let e = sim.add_node("echo", Echo);
    sim.add_node("starter", Starter { peer: e });
    let t0 = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(100000));
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "raw sim: {} events in {:.2}s = {:.0} events/s",
        sim.events_processed(),
        wall,
        sim.events_processed() as f64 / wall
    );
}
