//! Figure 8: throughput at the oracle — cache dynamics and shard scaling.
//!
//! Two experiments share this binary:
//!
//! **Timeline** (the paper's fig8 shape, with measurement windows): clients
//! start with *cold* location caches, so the opening seconds drive every
//! command through the oracle (the cold window); caches fill and queries
//! decay toward zero (the steady window); a repartitioning mid-run
//! invalidates cached entries and queries spike again. The table reports
//! oracle queries/s, completed commands/s and the cache-miss rate
//! (queries per completed command) per second, and the summary pins the
//! cold-window and steady-window means — the old version of this figure
//! only showed the decay to ~0 and measured nothing.
//!
//! **Shard sweep** (the scaling claim): with client caching disabled every
//! command queries the oracle first — a permanent flash crowd — and the
//! ordering pipeline pinned to one in-flight consensus instance per
//! leader makes each group's leader a genuine serialization point (the
//! regime the paper's fig8 discussion points at). Sweeping the oracle
//! across 1, 2 and 4 hash-sliced shard groups shows query throughput
//! scaling with the shard count while plan quality (edge cut) stays put.
//!
//! CI jobs mirror `fig7_partitioner_scaling`:
//!
//! * `--out FILE` writes machine-readable `BENCH_oracle.json`;
//! * `--check-against FILE` is the CI smoke gate: exit 1 when any shard
//!   count's queries/s falls more than 30% below the committed baseline;
//! * `--smoke` shortens both experiments so the gate finishes in seconds.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup, Placement};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

/// Shard counts the sweep visits (the scaling claim compares last vs
/// first).
const SHARDS: [u32; 3] = [1, 2, 4];
/// Sweep partitions: enough that partition-side ordering (8 groups at one
/// instance per leader) never binds before the oracle side (at most 4).
const SWEEP_PARTITIONS: u32 = 8;
const SWEEP_CLIENTS: usize = 64;

/// One sweep point's measurements.
struct SweepPoint {
    shards: u32,
    queries_per_sec: f64,
    cmds_per_sec: f64,
    /// Mean normalized edge cut (cut / total edge weight) of the
    /// published plans — the shard-count-independent quality measure.
    cut_frac: f64,
    plans: u64,
}

/// Timeline summary (cold-start caches, one mid-run repartitioning).
struct Timeline {
    rows: Vec<Vec<String>>,
    cold_qps: f64,
    steady_qps: f64,
    cold_miss: f64,
    steady_miss: f64,
    plans: u64,
}

/// Runs the flash-crowd sweep point at `shards` oracle shards: caching
/// off, so every command resolves through the oracle, and ordering
/// pinned to one in-flight instance per leader, so the oracle groups are
/// the serialization points being scaled.
fn run_sweep_point(shards: u32, warmup: u64, measure: u64) -> SweepPoint {
    let mut setup = ChirperSetup::new(SWEEP_PARTITIONS, Mode::Dynastar);
    setup.oracle_shards = shards;
    setup.client_location_cache = false;
    setup.warm_client_caches = false;
    // Oracle leaders pinned to one in-flight instance (the serialization
    // point under test); partition ordering keeps the unbounded default
    // so it never binds first.
    setup.oracle_batch = Some(BatchConfig { max_batch: 1, max_batch_delay_ticks: 0, window: 1 });
    setup.min_plan_interval = SimDuration::from_secs(warmup.max(2));
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..SWEEP_CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    cluster.run_for(SimDuration::from_secs(warmup));
    let q0 = cluster.metrics().counter(mn::ORACLE_QUERIES);
    let c0 = cluster.metrics().counter(mn::CMD_COMPLETED);
    cluster.run_for(SimDuration::from_secs(measure));
    let m = cluster.metrics();
    let cut = m
        .series(mn::PLAN_EDGE_CUT)
        .map(|s| {
            // Mean normalized cut over the published plans: bucket sums
            // divided by the plan count folds the series without assuming
            // spacing.
            let total: f64 = s.bucket_sums().iter().sum();
            total / m.counter(mn::PLANS_PUBLISHED).max(1) as f64
        })
        .unwrap_or(0.0);
    SweepPoint {
        shards,
        queries_per_sec: (m.counter(mn::ORACLE_QUERIES) - q0) as f64 / measure as f64,
        cmds_per_sec: (m.counter(mn::CMD_COMPLETED) - c0) as f64 / measure as f64,
        cut_frac: cut,
        plans: m.counter(mn::PLANS_PUBLISHED),
    }
}

/// Runs the cache-dynamics timeline: cold caches, caching *on*, a single
/// repartitioning mid-run. `secs` is split into a cold window (first
/// [`COLD_SECS`]) and a steady window (last third).
const COLD_SECS: usize = 5;

fn run_timeline(secs: u64) -> Timeline {
    let mut setup = ChirperSetup::new(4, Mode::Dynastar);
    // Cold clients + a random start that the mid-run repartitioning will
    // fix: the plan is what invalidates the refilled caches.
    setup.placement = Placement::Random;
    setup.warm_client_caches = false;
    setup.repartition_threshold = 10_000;
    setup.min_plan_interval = SimDuration::from_secs(secs * 4 / 9);
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..6 {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    cluster.run_for(SimDuration::from_secs(secs));

    let m = cluster.metrics();
    let queries = m.series(mn::ORACLE_QUERIES).map(|s| s.rates_per_sec()).unwrap_or_default();
    let cmds = m.series(mn::CMD_COMPLETED).map(|s| s.rates_per_sec()).unwrap_or_default();
    let moves = m.series(mn::PLAN_MOVES).map(|s| s.bucket_sums().to_vec()).unwrap_or_default();

    let mut rows = Vec::new();
    for t in 0..secs as usize {
        let q = queries.get(t).copied().unwrap_or(0.0);
        let c = cmds.get(t).copied().unwrap_or(0.0);
        let miss = if c > 0.0 { q / c } else { 0.0 };
        let mv = moves.get(t).copied().unwrap_or(0.0);
        let marker = if mv > 0.0 { format!("<= plan ({mv:.0} keys moved)") } else { String::new() };
        rows.push(vec![
            format!("{t}"),
            format!("{q:.0}"),
            format!("{c:.0}"),
            format!("{miss:.2}"),
            marker,
        ]);
    }
    let window = |range: std::ops::Range<usize>, series: &[f64]| -> f64 {
        let vals: Vec<f64> = range.filter_map(|t| series.get(t).copied()).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let cold = 0..COLD_SECS.min(secs as usize);
    let steady = (secs as usize).saturating_sub(secs as usize / 3)..secs as usize;
    let (cold_q, cold_c) = (window(cold.clone(), &queries), window(cold, &cmds));
    let (steady_q, steady_c) = (window(steady.clone(), &queries), window(steady, &cmds));
    Timeline {
        rows,
        cold_qps: cold_q,
        steady_qps: steady_q,
        cold_miss: if cold_c > 0.0 { cold_q / cold_c } else { 0.0 },
        steady_miss: if steady_c > 0.0 { steady_q / steady_c } else { 0.0 },
        plans: m.counter(mn::PLANS_PUBLISHED),
    }
}

/// Renders results as the flat JSON the CI gate and EXPERIMENTS.md
/// consume (hand-rolled like `probe_perf`: every value is a number,
/// nothing to escape).
fn to_json(points: &[SweepPoint], tl: &Timeline) -> String {
    let mut out = String::from("{\n  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"queries_per_sec\": {:.0}, \"cmds_per_sec\": {:.0}, \
             \"cut_frac\": {:.4}, \"plans\": {}}}{}\n",
            p.shards,
            p.queries_per_sec,
            p.cmds_per_sec,
            p.cut_frac,
            p.plans,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let base = points.first().map(|p| p.queries_per_sec).unwrap_or(0.0);
    let last = points.last().map(|p| p.queries_per_sec).unwrap_or(0.0);
    out.push_str(&format!("  \"speedup_max_shards\": {:.2},\n", last / base.max(1.0)));
    out.push_str(&format!(
        "  \"timeline\": {{\"cold_qps\": {:.0}, \"steady_qps\": {:.0}, \
         \"cold_miss_rate\": {:.2}, \"steady_miss_rate\": {:.2}, \"plans\": {}}}\n",
        tl.cold_qps, tl.steady_qps, tl.cold_miss, tl.steady_miss, tl.plans
    ));
    out.push_str("}\n");
    out
}

/// Pulls the baseline queries/s for `shards` out of a [`to_json`] file
/// without a JSON parser — each sweep run is one line with `shards`
/// first, exactly like fig7's baseline format.
fn parse_baseline_qps(json: &str, shards: u32) -> Option<f64> {
    let idx = json.find(&format!("\"shards\": {shards},"))?;
    let line = json[idx..].lines().next()?;
    let key = line.find("\"queries_per_sec\"")?;
    let rest = &line[key..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: fig8_oracle_load [--smoke] [--out FILE] [--check-against FILE]\n\
         \n\
         --smoke              shortened windows (CI gate workload)\n\
         --out FILE           write machine-readable BENCH_oracle.json\n\
         --check-against FILE exit 1 if queries/s fell >30% below the baseline file"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--check-against" => check_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (warmup, measure, tl_secs) = if smoke { (2, 4, 18) } else { (5, 10, 90) };

    println!("Figure 8 — oracle query throughput (social network)\n");

    // Shard sweep: every point is an independent deterministic simulation.
    let points = dynastar_bench::run_parallel(SHARDS.to_vec(), 0, |o| {
        eprintln!("fig8 [sweep]: {o} oracle shard(s), cold caches...");
        run_sweep_point(o, warmup, measure)
    });
    println!("== shard sweep (cold caches, {SWEEP_CLIENTS} clients, {SWEEP_PARTITIONS} partitions, window 1) ==");
    let base_qps = points[0].queries_per_sec;
    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            format!("{}", p.shards),
            format!("{:.0}", p.queries_per_sec),
            format!("{:.2}x", p.queries_per_sec / base_qps.max(1.0)),
            format!("{:.0}", p.cmds_per_sec),
            format!("{:.3}", p.cut_frac),
            format!("{}", p.plans),
        ]);
    }
    print_table(
        &["oracle shards", "queries/s", "speedup", "cmds/s", "plan cut frac", "plans"],
        &rows,
    );
    let speedup = points.last().unwrap().queries_per_sec / base_qps.max(1.0);
    println!(
        "\n1 -> {} shards scales oracle query throughput {speedup:.2}x \
         (paper target: >= 3x at 4 shards);",
        SHARDS[SHARDS.len() - 1]
    );
    println!("normalized plan cut stays flat across shard counts (the planner");
    println!("merges the same digested workload graph whichever shard collected it).\n");

    // Timeline: cache dynamics at one shard.
    eprintln!("fig8 [timeline]: {tl_secs}s cold-start run...");
    let tl = run_timeline(tl_secs);
    println!("== timeline (caches on, cold start, 4 partitions, 1 shard) ==");
    println!("plans published: {}\n", tl.plans);
    print_table(&["t(s)", "oracle queries/s", "cmds/s", "miss rate", ""], &tl.rows);
    println!(
        "\ncold window (first {COLD_SECS}s):  {:.0} queries/s, miss rate {:.2}",
        tl.cold_qps, tl.cold_miss
    );
    println!(
        "steady window (last third): {:.0} queries/s, miss rate {:.2}",
        tl.steady_qps, tl.steady_miss
    );
    println!("\npaper shape: a cold spike while caches fill, decay toward zero,");
    println!("a second spike right after the repartitioning invalidates entries.");

    if let Some(path) = out_path {
        std::fs::write(&path, to_json(&points, &tl)).expect("write BENCH_oracle.json");
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let mut failed = false;
        for p in &points {
            let Some(base) = parse_baseline_qps(&baseline, p.shards) else {
                println!("oracle gate: no {}-shard baseline in {path}, skipped", p.shards);
                continue;
            };
            let floor = base * 0.70;
            let verdict = if p.queries_per_sec < floor { "FAILED" } else { "ok" };
            println!(
                "oracle gate O={}: current {:.0} queries/s vs baseline {base:.0} \
                 (floor {floor:.0}) {verdict}",
                p.shards, p.queries_per_sec
            );
            failed |= p.queries_per_sec < floor;
        }
        if failed {
            eprintln!("oracle gate FAILED: queries/s regressed more than 30% below baseline");
            std::process::exit(1);
        }
        println!("oracle gate passed");
    }
}
