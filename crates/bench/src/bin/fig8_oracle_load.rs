//! Figure 8: throughput at the oracle over time.
//!
//! Clients start with fully warm location caches, so the oracle initially
//! answers zero queries. A repartitioning (~t = 80 s in the paper)
//! invalidates cached entries; queries spike as clients re-resolve, then
//! decay back to zero as caches refill.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup, Placement};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const RUN_SECS: u64 = 90;
const CLIENTS: usize = 6;

fn main() {
    let mut setup = ChirperSetup::new(4, Mode::Dynastar);
    // Warm caches + a random start that the first repartitioning will fix:
    // the repartition is what invalidates the caches.
    setup.placement = Placement::Random;
    setup.repartition_threshold = 10_000;
    // One repartitioning, at ~80 s as in the paper's plot.
    setup.min_plan_interval = dynastar_runtime::SimDuration::from_secs(40);
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    eprintln!("fig8: running {RUN_SECS}s (oracle queries over time)...");
    cluster.run_for(SimDuration::from_secs(RUN_SECS));

    let m = cluster.metrics();
    let queries = m.series(mn::ORACLE_QUERIES).map(|s| s.rates_per_sec()).unwrap_or_default();
    let moves = m.series(mn::PLAN_MOVES).map(|s| s.bucket_sums().to_vec()).unwrap_or_default();

    println!("\nFigure 8 — oracle query throughput (social network, warm caches)");
    println!("plans published: {}\n", m.counter(mn::PLANS_PUBLISHED));
    let mut rows = Vec::new();
    for t in 0..RUN_SECS as usize {
        let q = queries.get(t).copied().unwrap_or(0.0);
        let mv = moves.get(t).copied().unwrap_or(0.0);
        let marker = if mv > 0.0 { format!("<= plan ({mv:.0} keys moved)") } else { String::new() };
        rows.push(vec![format!("{t}"), format!("{q:.0}"), marker]);
    }
    print_table(&["t(s)", "oracle queries/s", ""], &rows);
    println!("\npaper shape: ~zero before the repartitioning, a spike right after");
    println!("(cache invalidations), rapid decay back toward zero.");
}
