//! Table 1: average per-partition load at peak throughput.
//!
//! Reproduces the paper's observation that even with objects evenly
//! distributed, Zipfian access skew leaves some partitions serving far
//! more commands than others. We run the Figure 6 scenario (social
//! network, DynaStar) and report per-partition throughput, multi-partition
//! commands/s and exchanged objects/s averaged over a steady window.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const RUN_SECS: u64 = 70;
const WINDOW_START: usize = 45;
const WINDOW_SECS: usize = 25;
const PARTITIONS: u32 = 4;
const CLIENTS: usize = 8;

fn main() {
    let setup = ChirperSetup::new(PARTITIONS, Mode::Dynastar);
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    eprintln!(
        "table1: running {RUN_SECS}s, measuring t={WINDOW_START}..{}",
        WINDOW_START + WINDOW_SECS
    );
    cluster.run_for(SimDuration::from_secs(RUN_SECS));

    let m = cluster.metrics();
    let window_avg = |name: &str| -> f64 {
        m.series(name)
            .map(|s| {
                let rates = s.rates_per_sec();
                let taken: Vec<f64> =
                    rates.iter().copied().skip(WINDOW_START).take(WINDOW_SECS).collect();
                if taken.is_empty() {
                    0.0
                } else {
                    taken.iter().sum::<f64>() / taken.len() as f64
                }
            })
            .unwrap_or(0.0)
    };

    println!("\nTable 1 — average load per partition at peak (social network, DynaStar)\n");
    let mut rows = Vec::new();
    for p in 0..PARTITIONS {
        rows.push(vec![
            format!("{}", p + 1),
            format!("{:.0}", window_avg(&mn::partition_executed(p))),
            format!("{:.0}", window_avg(&mn::partition_multi(p))),
            format!("{:.0}", window_avg(&mn::partition_objects(p))),
        ]);
    }
    print_table(&["partition", "tput (cmd/s)", "m-part cmds/s", "exchanged objects/s"], &rows);
    println!("\npaper shape: despite balanced object counts, command load is skewed");
    println!("(the paper reports ~2x between the busiest and quietest partitions).");
}
