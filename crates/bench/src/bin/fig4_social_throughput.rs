//! Figure 4: social-network throughput and latency vs partition count.
//!
//! Peak throughput (saturating clients) and latency at ~75% of peak
//! (fewer clients), for the timeline-only and the mix (85% timeline / 15%
//! post) workloads, DynaStar vs S-SMR\*. Partitions sweep 1 to 16.
//!
//! The paper's shape: timeline-only scales near-linearly for both; the
//! mix scales up to 8 partitions then flattens as edge cuts grow; DynaStar
//! and S-SMR\* stay comparable.
//!
//! Flags:
//!
//! * `--users N` / `--attach M` size the Barabási–Albert social graph
//!   (defaults 2000 / 6, the CI-sized smoke profile);
//! * `--full` is the committed paper profile: the 456k-user graph (the
//!   Higgs dataset's size) swept to 16 partitions;
//! * `--max-parts N` sweeps partitions `[1, 2, 4, 8, 16]` up to `N`
//!   (default 4);
//! * `--workload timeline|mix|both` filters the workload list — at
//!   100k+ users BA hubs have thousands of followers, so every post in
//!   the mix is a huge multi-key command (all-pairs hint recording is
//!   quadratic in fan-out); paper-scale sweeps use `timeline`;
//! * `--smoke` shortens windows and skips the latency runs;
//! * `--out FILE` writes machine-readable JSON;
//! * `--batch-sweep` appends the ordering-batch-size sweep.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

/// Saturating client count grows with the partition count so wide sweeps
/// stay saturated; at the classic 1–4-partition trim this is the
/// historical 12.
fn saturating_clients(partitions: u32) -> usize {
    (partitions as usize * 3).max(12)
}

struct Point {
    tput: f64,
    avg_ms: f64,
    p95_ms: f64,
}

struct Sizing {
    users: usize,
    attach: usize,
    warmup: u64,
    measure: u64,
}

fn run_batched(
    partitions: u32,
    mode: Mode,
    mix: ChirperMix,
    clients: usize,
    batch: BatchConfig,
    sz: &Sizing,
) -> Point {
    let mut setup = ChirperSetup::new(partitions, mode);
    setup.users = sz.users;
    setup.follows_per_user = sz.attach;
    setup.batch = batch;
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..clients {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, mix));
    }
    cluster.run_until(SimTime::from_secs(sz.warmup));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(sz.measure));
    let m = cluster.metrics();
    let tput = m.counter(mn::CMD_COMPLETED) as f64 / sz.measure as f64;
    let (avg_ms, p95_ms) = m
        .histogram(mn::CMD_LATENCY)
        .map(|h| (h.mean().as_millis_f64(), h.quantile(0.95).as_millis_f64()))
        .unwrap_or((0.0, 0.0));
    Point { tput, avg_ms, p95_ms }
}

fn run(partitions: u32, mode: Mode, mix: ChirperMix, clients: usize, sz: &Sizing) -> Point {
    run_batched(partitions, mode, mix, clients, BatchConfig::UNBATCHED, sz)
}

fn usage() -> ! {
    eprintln!(
        "usage: fig4_social_throughput [--users N] [--attach M] [--max-parts N]\n\
         \x20                             [--full] [--smoke] [--out FILE] [--batch-sweep]\n\
         \n\
         --users N      social graph size                     [2000]\n\
         --attach M     Barabási–Albert attachment degree     [6]\n\
         --max-parts N  sweep partitions 1,2,4,8,16 up to N   [4]\n\
         --full         paper profile: 456000 users, 16 partitions\n\
         --workload W   timeline | mix | both                 [both]\n\
         --smoke        shortened windows, peak throughput only\n\
         --out FILE     write machine-readable JSON\n\
         --batch-sweep  append the ordering-batch-size sweep\n\
         \n\
         at 100k+ users, BA hubs have thousands of followers, so every\n\
         post in the mix workload is a huge multi-key command — sweep\n\
         paper-scale graphs with --workload timeline"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut full = false;
    let mut batch_sweep = false;
    let mut users: usize = 2_000;
    let mut attach: usize = 6;
    let mut max_parts: u32 = 4;
    let mut workload = "both".to_string();
    let mut out_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--full" => full = true,
            "--batch-sweep" => batch_sweep = true,
            "--users" => users = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--attach" => {
                attach = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-parts" => {
                max_parts = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--workload" => workload = it.next().cloned().unwrap_or_else(|| usage()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if full {
        users = 456_000;
        max_parts = max_parts.max(16);
    }
    let sz = Sizing {
        users,
        attach,
        warmup: if smoke { 1 } else { 3 },
        measure: if smoke { 2 } else { 6 },
    };
    let sweep: Vec<u32> = [1u32, 2, 4, 8, 16].into_iter().filter(|&k| k <= max_parts).collect();

    println!("Figure 4 — Chirper throughput and latency vs partitions ({users} users)\n");
    let mut json = String::from("{\n  \"runs\": [\n");
    let mut first_json = true;
    let workloads: Vec<(&str, &str, ChirperMix)> = match workload.as_str() {
        "timeline" => vec![("timeline-only", "timeline", ChirperMix::TIMELINE_ONLY)],
        "mix" => vec![("mix 85/15", "mix", ChirperMix::MIX)],
        "both" => vec![
            ("timeline-only", "timeline", ChirperMix::TIMELINE_ONLY),
            ("mix 85/15", "mix", ChirperMix::MIX),
        ],
        _ => usage(),
    };
    for (label, slug, mix) in workloads {
        println!("== workload: {label} ==");
        // Each (partitions, mode) point is an independent deterministic
        // simulation; fan out across cores, reassemble in input order.
        let points: Vec<(u32, Mode)> =
            sweep.iter().flat_map(|&k| [(k, Mode::Dynastar), (k, Mode::SSmr)]).collect();
        let peaks = dynastar_bench::run_parallel(points.clone(), 0, |(k, mode)| {
            eprintln!("fig4 [{label}]: {k} partition(s), {mode:?} peak...");
            run(k, mode, mix, saturating_clients(k), &sz)
        });
        // ~75% of peak load for the latency measurement (skipped in smoke).
        let lats: Vec<Option<Point>> = if smoke {
            points.iter().map(|_| None).collect()
        } else {
            dynastar_bench::run_parallel(points, 0, |(k, mode)| {
                eprintln!("fig4 [{label}]: {k} partition(s), {mode:?} latency...");
                Some(run(k, mode, mix, (saturating_clients(k) * 3 / 4).max(1), &sz))
            })
        };
        let mut rows = Vec::new();
        for (i, &k) in sweep.iter().enumerate() {
            let (peak_dyn, peak_ssmr) = (&peaks[2 * i], &peaks[2 * i + 1]);
            let fmt_lat = |p: &Option<Point>| match p {
                Some(p) => format!("{:.1}/{:.1}", p.avg_ms, p.p95_ms),
                None => "-".into(),
            };
            rows.push(vec![
                format!("{k}"),
                format!("{:.0}", peak_dyn.tput),
                format!("{:.0}", peak_ssmr.tput),
                fmt_lat(&lats[2 * i]),
                fmt_lat(&lats[2 * i + 1]),
            ]);
            if !first_json {
                json.push_str(",\n");
            }
            first_json = false;
            json.push_str(&format!(
                "    {{\"workload\": \"{slug}\", \"partitions\": {k}, \"users\": {users}, \
                 \"dynastar_cps\": {:.0}, \"ssmr_cps\": {:.0}}}",
                peak_dyn.tput, peak_ssmr.tput
            ));
        }
        print_table(
            &[
                "partitions",
                "DynaStar cps",
                "S-SMR* cps",
                "DynaStar ms avg/p95",
                "S-SMR* ms avg/p95",
            ],
            &rows,
        );
        println!();
    }
    json.push_str("\n  ]\n}\n");
    println!("paper shape: timeline-only scales for both; mix flattens at high partition counts.");
    if let Some(path) = out_path {
        std::fs::write(&path, json).expect("write fig4 json");
        println!("wrote {path}");
    }

    // Optional extra: ordering-batch-size sweep (pass --batch-sweep).
    // Window pinned to one in-flight instance per leader so `max_batch` is
    // the only variable; see `probe_batching` for the asserted version.
    if batch_sweep {
        println!("\n== batch-size sweep (DynaStar, mix 85/15, 4 partitions, window 1) ==");
        let mut rows = Vec::new();
        for &mb in &[1usize, 4, 8, 16] {
            eprintln!("fig4 [batch sweep]: max_batch = {mb}...");
            let batch = BatchConfig { max_batch: mb, max_batch_delay_ticks: 0, window: 1 };
            let p = run_batched(4, Mode::Dynastar, ChirperMix::MIX, 12, batch, &sz);
            rows.push(vec![
                format!("{mb}"),
                format!("{:.0}", p.tput),
                format!("{:.1}/{:.1}", p.avg_ms, p.p95_ms),
            ]);
        }
        print_table(&["max_batch", "cps", "ms avg/p95"], &rows);
    }
}
