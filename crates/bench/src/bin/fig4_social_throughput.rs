//! Figure 4: social-network throughput and latency vs partition count.
//!
//! Peak throughput (saturating clients) and latency at ~75% of peak
//! (fewer clients), for the timeline-only and the mix (85% timeline / 15%
//! post) workloads, DynaStar vs S-SMR\*. Partitions ∈ {1, 2, 4, 8}.
//!
//! The paper's shape: timeline-only scales near-linearly for both; the
//! mix scales up to 8 partitions then flattens as edge cuts grow; DynaStar
//! and S-SMR\* stay comparable.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const WARMUP_SECS: u64 = 3;
const MEASURE_SECS: u64 = 6;
const SATURATING_CLIENTS: usize = 12;

struct Point {
    tput: f64,
    avg_ms: f64,
    p95_ms: f64,
}

fn run(partitions: u32, mode: Mode, mix: ChirperMix, clients: usize) -> Point {
    run_batched(partitions, mode, mix, clients, BatchConfig::UNBATCHED)
}

fn run_batched(
    partitions: u32,
    mode: Mode,
    mix: ChirperMix,
    clients: usize,
    batch: BatchConfig,
) -> Point {
    let mut setup = ChirperSetup::new(partitions, mode);
    setup.batch = batch;
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..clients {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, mix));
    }
    cluster.run_until(SimTime::from_secs(WARMUP_SECS));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(MEASURE_SECS));
    let m = cluster.metrics();
    let tput = m.counter(mn::CMD_COMPLETED) as f64 / MEASURE_SECS as f64;
    let (avg_ms, p95_ms) = m
        .histogram(mn::CMD_LATENCY)
        .map(|h| (h.mean().as_millis_f64(), h.quantile(0.95).as_millis_f64()))
        .unwrap_or((0.0, 0.0));
    Point { tput, avg_ms, p95_ms }
}

fn main() {
    println!("Figure 4 — Chirper throughput and latency vs partitions\n");
    for (label, mix) in
        [("timeline-only", ChirperMix::TIMELINE_ONLY), ("mix 85/15", ChirperMix::MIX)]
    {
        println!("== workload: {label} ==");
        let mut rows = Vec::new();
        for &k in &[1u32, 2, 4] {
            eprintln!("fig4 [{label}]: {k} partition(s)...");
            let peak_dyn = run(k, Mode::Dynastar, mix, SATURATING_CLIENTS);
            let peak_ssmr = run(k, Mode::SSmr, mix, SATURATING_CLIENTS);
            // ~75% of peak load for the latency measurement.
            let lat_clients = (SATURATING_CLIENTS * 3 / 4).max(1);
            let lat_dyn = run(k, Mode::Dynastar, mix, lat_clients);
            let lat_ssmr = run(k, Mode::SSmr, mix, lat_clients);
            rows.push(vec![
                format!("{k}"),
                format!("{:.0}", peak_dyn.tput),
                format!("{:.0}", peak_ssmr.tput),
                format!("{:.1}/{:.1}", lat_dyn.avg_ms, lat_dyn.p95_ms),
                format!("{:.1}/{:.1}", lat_ssmr.avg_ms, lat_ssmr.p95_ms),
            ]);
        }
        print_table(
            &[
                "partitions",
                "DynaStar cps",
                "S-SMR* cps",
                "DynaStar ms avg/p95",
                "S-SMR* ms avg/p95",
            ],
            &rows,
        );
        println!();
    }
    println!("paper shape: timeline-only scales for both; mix flattens at high partition counts.");

    // Optional extra: ordering-batch-size sweep (pass --batch-sweep).
    // Window pinned to one in-flight instance per leader so `max_batch` is
    // the only variable; see `probe_batching` for the asserted version.
    if std::env::args().any(|a| a == "--batch-sweep") {
        println!("\n== batch-size sweep (DynaStar, mix 85/15, 4 partitions, window 1) ==");
        let mut rows = Vec::new();
        for &mb in &[1usize, 4, 8, 16] {
            eprintln!("fig4 [batch sweep]: max_batch = {mb}...");
            let batch = BatchConfig { max_batch: mb, max_batch_delay_ticks: 0, window: 1 };
            let p = run_batched(4, Mode::Dynastar, ChirperMix::MIX, SATURATING_CLIENTS, batch);
            rows.push(vec![
                format!("{mb}"),
                format!("{:.0}", p.tput),
                format!("{:.1}/{:.1}", p.avg_ms, p.p95_ms),
            ]);
        }
        print_table(&["max_batch", "cps", "ms avg/p95"], &rows);
    }
}
