//! Ablation: the three replication schemes on one workload.
//!
//! Backs the paper's §8 claims: when the state cannot be perfectly
//! partitioned, DynaStar largely outperforms DS-SMR (naive migration
//! thrashes state back and forth), and approaches the idealized S-SMR\*
//! while needing no a-priori knowledge. Also quantifies the knobs:
//! multi-partition rate, objects moved, retries, oracle load.

use std::sync::Arc;

use dynastar_bench::report::print_table;
use dynastar_bench::setup::{chirper_cluster, ChirperSetup, Placement};
use dynastar_core::metric_names as mn;
use dynastar_core::Mode;
use dynastar_runtime::{SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};

const WARMUP_SECS: u64 = 30; // long enough for DynaStar's first plan
const MEASURE_SECS: u64 = 10;
const CLIENTS: usize = 6;
const PARTITIONS: u32 = 4;

struct Outcome {
    tput: f64,
    multi_pct: f64,
    objects_per_sec: f64,
    retries: u64,
    oracle_queries: u64,
    plans: u64,
}

fn run(mode: Mode) -> Outcome {
    let mut setup = ChirperSetup::new(PARTITIONS, mode);
    // Everyone starts from the same random placement except S-SMR*, whose
    // whole point is the precomputed optimized map.
    if mode != Mode::SSmr {
        setup.placement = Placement::Random;
    }
    if mode == Mode::Dynastar {
        setup.repartition_threshold = 4_000;
        setup.min_plan_interval = SimDuration::from_secs(12);
    }
    let (mut cluster, graph) = chirper_cluster(&setup);
    for _ in 0..CLIENTS {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, ChirperMix::MIX));
    }
    cluster.run_until(SimTime::from_secs(WARMUP_SECS));
    cluster.metrics_mut().reset();
    cluster.run_for(SimDuration::from_secs(MEASURE_SECS));
    let m = cluster.metrics();
    let multi = m.counter(mn::CMD_MULTI) as f64;
    let single = m.counter(mn::CMD_SINGLE) as f64;
    Outcome {
        tput: m.counter(mn::CMD_COMPLETED) as f64 / MEASURE_SECS as f64,
        multi_pct: 100.0 * multi / (multi + single).max(1.0),
        objects_per_sec: m.counter(mn::OBJECTS_EXCHANGED) as f64 / MEASURE_SECS as f64,
        retries: m.counter(mn::CMD_RETRY),
        oracle_queries: m.counter(mn::ORACLE_QUERIES),
        plans: m.counter(mn::PLANS_PUBLISHED),
    }
}

fn main() {
    println!("Ablation — replication schemes on the Chirper mix workload");
    println!(
        "({PARTITIONS} partitions, {CLIENTS} clients, measured after {WARMUP_SECS}s warm-up)\n"
    );
    let mut rows = Vec::new();
    for mode in [Mode::Dynastar, Mode::SSmr, Mode::DsSmr] {
        eprintln!("ablation: running {mode}...");
        let o = run(mode);
        rows.push(vec![
            mode.to_string(),
            format!("{:.0}", o.tput),
            format!("{:.1}", o.multi_pct),
            format!("{:.0}", o.objects_per_sec),
            format!("{}", o.retries),
            format!("{}", o.oracle_queries),
            format!("{}", o.plans),
        ]);
    }
    print_table(
        &["scheme", "cmd/s", "%multi", "objects/s", "retries", "oracle queries", "plans"],
        &rows,
    );
    println!("\npaper shape: DynaStar ≈ S-SMR* throughput with no prior knowledge;");
    println!("DS-SMR trails with far more object movement and oracle traffic.");
}
