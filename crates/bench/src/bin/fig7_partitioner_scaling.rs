//! Figure 7: partitioner (METIS substitute) CPU time and memory vs graph
//! size.
//!
//! The paper shows METIS scaling linearly in time and memory up to 10M
//! vertices. We sweep power-law graphs from 10k to 1M vertices through the
//! multilevel partitioner and report wall-clock compute time and the
//! resident size of the graph + partitioning structures.
//!
//! This binary measures *real* CPU time (it benchmarks our actual
//! partitioner, not the simulation).

use std::time::Instant;

use dynastar_bench::report::print_table;
use dynastar_partitioner::{partition, GraphBuilder, PartitionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a preferential-attachment-ish graph with `n` vertices and ~4n
/// edges (power-law degree tail, like a workload graph).
fn power_law_graph(n: u32, rng: &mut StdRng) -> dynastar_partitioner::Graph {
    let mut b = GraphBuilder::new();
    b.add_vertex(n - 1);
    for v in 1..n {
        for _ in 0..4 {
            // Preferential-ish: bias toward low ids (early vertices).
            let exp: f64 = rng.gen::<f64>();
            let u = ((v as f64) * exp * exp) as u32;
            if u != v {
                b.add_edge(v, u.min(v - 1), 1 + rng.gen_range(0..4u64));
            }
        }
    }
    b.build()
}

/// Rough resident bytes of the CSR graph plus partitioner working set.
fn graph_bytes(g: &dynastar_partitioner::Graph) -> usize {
    // xadj (8B/vertex) + adj (12B/half-edge × 2) + vwgt (8B/vertex),
    // doubled for the coarsening hierarchy's geometric sum.
    let base = g.vertex_count() * 16 + g.edge_count() * 2 * 12;
    base * 2
}

fn main() {
    println!("Figure 7 — multilevel partitioner CPU and memory scaling (k = 8)\n");
    let mut rows = Vec::new();
    let mut prev_time = 0.0f64;
    for &n in &[10_000u32, 30_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = power_law_graph(n, &mut rng);
        let t0 = Instant::now();
        let p = partition(&g, 8, &PartitionConfig::default());
        let secs = t0.elapsed().as_secs_f64();
        let mb = graph_bytes(&g) as f64 / 1e6;
        let growth = if prev_time > 0.0 { secs / prev_time } else { 0.0 };
        prev_time = secs;
        rows.push(vec![
            format!("{n}"),
            format!("{}", g.edge_count()),
            format!("{secs:.3}"),
            format!("{mb:.1}"),
            format!("{:.0}", p.edge_cut(&g)),
            format!("{:.2}", p.balance(&g)),
            if growth > 0.0 { format!("{growth:.1}x") } else { "-".into() },
        ]);
        eprintln!("fig7: |V|={n} done in {secs:.3}s");
    }
    print_table(
        &["vertices", "edges", "time(s)", "memory(MB)", "edge-cut", "balance", "time growth"],
        &rows,
    );
    println!("\npaper shape: time and memory grow linearly with graph size");
    println!("(each 3.3x size step should cost ~3-4x time; balance stays <= 1.2).");
}
