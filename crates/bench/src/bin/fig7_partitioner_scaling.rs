//! Figure 7: partitioner (METIS substitute) CPU time and memory vs graph
//! size, plus the warm-start repartitioning path.
//!
//! The paper shows METIS scaling linearly in time and memory up to 10M
//! vertices. We sweep power-law graphs from 10k to 1M vertices through the
//! multilevel partitioner and report wall-clock compute time, the resident
//! size of the graph + partitioning structures, and — for the incremental
//! oracle path — how fast `partition_from` recovers a perturbed assignment.
//!
//! This binary measures *real* CPU time (it benchmarks our actual
//! partitioner, not the simulation). Two extra jobs mirror `probe_perf`:
//!
//! * `--out FILE` writes machine-readable `BENCH_partitioner.json`;
//! * `--check-against FILE` is the CI smoke gate: exit 1 when elements/s
//!   (graph vertices + edges partitioned per wall-second) falls more than
//!   30% below the committed baseline;
//! * `--smoke` restricts the sweep to the seeded 100k-vertex graph so the
//!   CI gate finishes in seconds.

use std::time::Instant;

use dynastar_bench::report::print_table;
use dynastar_partitioner::{partition, partition_from, GraphBuilder, PartitionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: u32 = 8;

/// Builds a preferential-attachment-ish graph with `n` vertices and ~4n
/// edges (power-law degree tail, like a workload graph).
fn power_law_graph(n: u32, rng: &mut StdRng) -> dynastar_partitioner::Graph {
    let mut b = GraphBuilder::new();
    b.add_vertex(n - 1);
    for v in 1..n {
        for _ in 0..4 {
            // Preferential-ish: bias toward low ids (early vertices).
            let exp: f64 = rng.gen::<f64>();
            let u = ((v as f64) * exp * exp) as u32;
            if u != v {
                b.add_edge(v, u.min(v - 1), 1 + rng.gen_range(0..4u64));
            }
        }
    }
    b.build()
}

/// Rough resident bytes of the CSR graph plus partitioner working set.
fn graph_bytes(vertices: usize, edges: usize) -> usize {
    // xadj (8B/vertex) + adj (12B/half-edge × 2) + vwgt (8B/vertex),
    // doubled for the coarsening hierarchy's geometric sum.
    let base = vertices * 16 + edges * 2 * 12;
    base * 2
}

/// One sweep point's measurements.
struct Point {
    vertices: u32,
    edges: usize,
    secs: f64,
    warm_secs: f64,
    edge_cut: u64,
    warm_cut: u64,
    balance: f64,
    elements_per_sec: f64,
}

/// Partitions one seeded power-law graph and times both the full
/// multilevel run and the warm-start path (a fresh run's assignment with a
/// deterministic ~5% of vertices scattered — the "workload drifted since
/// the last plan" shape the oracle warm-starts from).
fn run_point(n: u32) -> Point {
    let mut rng = StdRng::seed_from_u64(7);
    let g = power_law_graph(n, &mut rng);
    let cfg = PartitionConfig::default();
    // Deterministic inputs give identical outputs on every iteration, so
    // only the timing varies: take the minimum of three runs to strip
    // scheduler noise (this sweep shares a host with other tenants).
    const ITERS: usize = 3;
    let mut secs = f64::INFINITY;
    let mut p = partition(&g, K, &cfg);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        p = partition(&g, K, &cfg);
        secs = secs.min(t0.elapsed().as_secs_f64());
    }

    let mut prev = p.assignment().to_vec();
    let mut perturb = StdRng::seed_from_u64(11);
    for slot in prev.iter_mut() {
        if perturb.gen_range(0..20u32) == 0 {
            *slot = perturb.gen_range(0..K);
        }
    }
    let mut warm_secs = f64::INFINITY;
    let mut warm = partition_from(&g, K, &prev, &cfg);
    for _ in 0..ITERS {
        let t1 = Instant::now();
        warm = partition_from(&g, K, &prev, &cfg);
        warm_secs = warm_secs.min(t1.elapsed().as_secs_f64());
    }

    Point {
        vertices: n,
        edges: g.edge_count(),
        secs,
        warm_secs,
        edge_cut: p.edge_cut(&g),
        warm_cut: warm.edge_cut(&g),
        balance: p.balance(&g),
        elements_per_sec: (g.vertex_count() + g.edge_count()) as f64 / secs.max(1e-9),
    }
}

/// Renders results as the flat JSON the CI gate and EXPERIMENTS.md consume
/// (hand-rolled like `probe_perf`: every value is a number, nothing to
/// escape). The `before` block records the pre-rewrite timings from the
/// committed fig7 sweep so the record carries its own before/after story.
fn to_json(points: &[Point]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"vertices\": {}, \"edges\": {}, \"k\": {K}, \"secs\": {:.3}, \
             \"warm_secs\": {:.3}, \"edge_cut\": {}, \"warm_cut\": {}, \"balance\": {:.3}, \
             \"elements_per_sec\": {:.0}}}{}\n",
            p.vertices,
            p.edges,
            p.secs,
            p.warm_secs,
            p.edge_cut,
            p.warm_cut,
            p.balance,
            p.elements_per_sec,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let best = points.iter().map(|p| p.elements_per_sec).fold(0.0f64, f64::max);
    out.push_str(&format!("  \"best_elements_per_sec\": {best:.0},\n"));
    out.push_str(
        "  \"before\": {\"note\": \"pre-rewrite full-sweep seconds (BTreeMap frontier/refine, \
         builder contraction)\", \"secs_10k\": 0.329, \"secs_30k\": 1.012, \"secs_100k\": 4.803, \
         \"secs_300k\": 123.520, \"secs_1m\": 236.229}\n",
    );
    out.push_str("}\n");
    out
}

/// Pulls the `elements_per_sec` of the baseline run with `vertices` out of
/// a baseline JSON without a JSON parser — the file is generated by
/// [`to_json`], so each run is one line and the keys appear in a fixed
/// order with `vertices` first.
fn parse_baseline_eps(json: &str, vertices: u32) -> Option<f64> {
    let idx = json.find(&format!("\"vertices\": {vertices},"))?;
    let line = json[idx..].lines().next()?;
    let key = line.find("\"elements_per_sec\"")?;
    let rest = &line[key..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: fig7_partitioner_scaling [--smoke] [--out FILE] [--check-against FILE]\n\
         \n\
         --smoke              only the seeded 100k-vertex point (CI gate workload)\n\
         --out FILE           write machine-readable BENCH_partitioner.json\n\
         --check-against FILE exit 1 if elements/s fell >30% below the baseline file"
    );
    std::process::exit(2)
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--check-against" => check_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let sizes: &[u32] =
        if smoke { &[100_000] } else { &[10_000, 30_000, 100_000, 300_000, 1_000_000] };
    println!("Figure 7 — multilevel partitioner CPU and memory scaling (k = {K})\n");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut prev_time = 0.0f64;
    for &n in sizes {
        let p = run_point(n);
        let mb = graph_bytes(p.vertices as usize, p.edges) as f64 / 1e6;
        let growth = if prev_time > 0.0 { p.secs / prev_time } else { 0.0 };
        prev_time = p.secs;
        rows.push(vec![
            format!("{n}"),
            format!("{}", p.edges),
            format!("{:.3}", p.secs),
            format!("{:.3}", p.warm_secs),
            format!("{mb:.1}"),
            format!("{}", p.edge_cut),
            format!("{:.2}", p.balance),
            if growth > 0.0 { format!("{growth:.1}x") } else { "-".into() },
        ]);
        eprintln!("fig7: |V|={n} full {:.3}s, warm {:.3}s", p.secs, p.warm_secs);
        points.push(p);
    }
    print_table(
        &[
            "vertices",
            "edges",
            "time(s)",
            "warm(s)",
            "memory(MB)",
            "edge-cut",
            "balance",
            "time growth",
        ],
        &rows,
    );
    println!("\npaper shape: time and memory grow linearly with graph size");
    println!("(each 3.3x size step should cost ~3-4x time; balance stays <= 1.2;");
    println!("warm(s) is the incremental partition_from path on a ~5%-perturbed plan).");

    if let Some(path) = out_path {
        std::fs::write(&path, to_json(&points)).expect("write BENCH_partitioner.json");
        println!("wrote {path}");
    }
    if let Some(path) = check_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        // Compare each swept size against the *same size* in the baseline —
        // elements/s falls with graph size (cache pressure), so comparing a
        // smoke point against the baseline's best would mix sizes and
        // leave almost no noise headroom.
        let mut failed = false;
        for p in &points {
            let Some(base) = parse_baseline_eps(&baseline, p.vertices) else {
                println!("partitioner gate: no |V|={} baseline in {path}, skipped", p.vertices);
                continue;
            };
            let floor = base * 0.70;
            let verdict = if p.elements_per_sec < floor { "FAILED" } else { "ok" };
            println!(
                "partitioner gate |V|={}: current {:.0} elems/s vs baseline {base:.0} \
                 (floor {floor:.0}) {verdict}",
                p.vertices, p.elements_per_sec
            );
            failed |= p.elements_per_sec < floor;
        }
        if failed {
            eprintln!("partitioner gate FAILED: elements/s regressed more than 30% below baseline");
            std::process::exit(1);
        }
        println!("partitioner gate passed");
    }
}
