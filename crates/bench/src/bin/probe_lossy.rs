//! Diagnostic probe for the lossy-network scenario (not a paper
//! experiment): prints counters every 10 simulated seconds.
//!
//! `probe_lossy [--out FILE]` additionally writes the final counters —
//! including the transport's `dropped_sends` and FIFO reorder-drop
//! tallies — as flat JSON, so lossy-fabric runs are comparable across
//! revisions.
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::{LatencyModel, NetConfig, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

struct Load {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    completed: Arc<Mutex<u32>>,
}

impl Workload<Counters> for Load {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = (a + 1 + rng.gen_range(0..self.vars - 1)) % self.vars;
            vars.push(VarId(b));
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(&mut self, _now: SimTime, _cmd: &Command<Counters>, reply: Option<&i64>) {
        if reply.is_some() {
            *self.completed.lock().unwrap() += 1;
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: probe_lossy [--out FILE]");
    std::process::exit(2)
}

fn main() {
    let mut out_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let net = NetConfig::default()
        .latency(LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_micros(900),
        })
        .loss_probability(0.02);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 5,
        net,
        repartition_threshold: u64::MAX,
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..20u64 {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let completed = Arc::new(Mutex::new(0));
    for _ in 0..3 {
        cluster.add_client(Load {
            vars: 20,
            remaining: 40,
            multi_pct: 30,
            completed: Arc::clone(&completed),
        });
    }
    for slice in 0..12 {
        cluster.run_for(SimDuration::from_secs(10));
        let m = cluster.metrics();
        println!(
            "t={:>3}s done={:>3} retries={} timeouts={} oracle_q={} single={} multi={}",
            (slice + 1) * 10,
            *completed.lock().unwrap(),
            m.counter(mn::CMD_RETRY),
            m.counter(mn::CMD_TIMEOUT),
            m.counter(mn::ORACLE_QUERIES),
            m.counter(mn::CMD_SINGLE),
            m.counter(mn::CMD_MULTI),
        );
    }

    if let Some(path) = out_path {
        // Hand-rolled flat JSON (every value is a number), like fig9's
        // `to_json`: the transport counters make lossy-fabric runs
        // comparable across revisions.
        let m = cluster.metrics();
        let fields: &[(&str, u64)] = &[
            ("completed", u64::from(*completed.lock().unwrap())),
            ("retries", m.counter(mn::CMD_RETRY)),
            ("timeouts", m.counter(mn::CMD_TIMEOUT)),
            ("oracle_queries", m.counter(mn::ORACLE_QUERIES)),
            ("dropped_sends", m.counter(mn::NET_DROPPED_SENDS)),
            ("fifo_drops", m.counter(mn::NET_FIFO_DROPS)),
            ("retransmissions", m.counter(mn::NET_RETRANSMISSIONS)),
            ("frames_abandoned", m.counter(mn::NET_FRAMES_ABANDONED)),
        ];
        let mut json = String::from("{\n");
        for (i, (name, value)) in fields.iter().enumerate() {
            json.push_str(&format!(
                "  \"{name}\": {value}{}\n",
                if i + 1 < fields.len() { "," } else { "" }
            ));
        }
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write probe_lossy JSON");
        println!("wrote {path}");
    }
}
