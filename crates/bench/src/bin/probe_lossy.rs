//! Diagnostic probe for the lossy-network scenario (not a paper
//! experiment): prints counters every 10 simulated seconds.
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar_core::metric_names as mn;
use dynastar_core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar_runtime::{LatencyModel, NetConfig, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

struct Load {
    vars: u64,
    remaining: u32,
    multi_pct: u32,
    completed: Arc<Mutex<u32>>,
}

impl Workload<Counters> for Load {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let a = rng.gen_range(0..self.vars);
        let mut vars = vec![VarId(a)];
        if rng.gen_range(0..100u32) < self.multi_pct {
            let b = (a + 1 + rng.gen_range(0..self.vars - 1)) % self.vars;
            vars.push(VarId(b));
        }
        Some(CommandKind::Access { op: 1, vars })
    }

    fn on_completed(&mut self, _now: SimTime, _cmd: &Command<Counters>, reply: Option<&i64>) {
        if reply.is_some() {
            *self.completed.lock().unwrap() += 1;
        }
    }
}

fn main() {
    let net = NetConfig::default()
        .latency(LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_micros(900),
        })
        .loss_probability(0.02);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 5,
        net,
        repartition_threshold: u64::MAX,
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..20u64 {
        b.place(LocKey(v), PartitionId((v % 2) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let completed = Arc::new(Mutex::new(0));
    for _ in 0..3 {
        cluster.add_client(Load {
            vars: 20,
            remaining: 40,
            multi_pct: 30,
            completed: Arc::clone(&completed),
        });
    }
    for slice in 0..12 {
        cluster.run_for(SimDuration::from_secs(10));
        let m = cluster.metrics();
        println!(
            "t={:>3}s done={:>3} retries={} timeouts={} oracle_q={} single={} multi={}",
            (slice + 1) * 10,
            *completed.lock().unwrap(),
            m.counter(mn::CMD_RETRY),
            m.counter(mn::CMD_TIMEOUT),
            m.counter(mn::ORACLE_QUERIES),
            m.counter(mn::CMD_SINGLE),
            m.counter(mn::CMD_MULTI),
        );
    }
}
