//! Plain-text result rendering for the experiment binaries.

/// Prints an aligned table: `headers` then one row per entry.
///
/// # Example
///
/// ```
/// dynastar_bench::print_table(
///     &["partitions", "tput"],
///     &[vec!["2".into(), "1000".into()], vec!["4".into(), "1900".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
    println!("{}", line.join("  "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", sep.join("  "));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("{}", line.join("  "));
    }
}

/// Prints a time series as `t  value` pairs, one per bucket.
pub fn print_series(name: &str, bucket_secs: f64, values: &[f64]) {
    println!("# series: {name} (bucket = {bucket_secs}s)");
    for (i, v) in values.iter().enumerate() {
        println!("{:>8.1}  {v:.1}", i as f64 * bucket_secs);
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.34), "42.3");
        assert_eq!(fmt(1.234), "1.23");
    }

    #[test]
    fn print_table_handles_ragged_rows() {
        // Smoke test: must not panic.
        print_table(&["a", "b"], &[vec!["1".into()], vec!["22".into(), "333".into()]]);
    }
}
