//! # dynastar-bench
//!
//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (§6). Each figure has a
//! `src/bin/figN_*.rs` binary; run them with
//! `cargo run --release -p dynastar-bench --bin <name>`.
//!
//! The binaries print the same rows/series the paper plots. Absolute
//! numbers differ from the paper (simulated network vs. EC2), but the
//! shapes — who wins, by what factor, where crossovers fall — are the
//! reproduction targets; see EXPERIMENTS.md for the side-by-side record.

#![forbid(unsafe_code)]

pub mod report;
pub mod setup;

pub use report::{print_series, print_table};
pub use setup::{chirper_cluster, run_parallel, tpcc_cluster, ChirperSetup, TpccSetup};
