//! Cluster construction shared by the experiment binaries.

use std::sync::{Arc, Mutex};

use dynastar_core::{BatchConfig, Cluster, ClusterBuilder, ClusterConfig, Mode, PartitionId};
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{Chirper, ChirperUser};
use dynastar_workloads::placement;
use dynastar_workloads::socialgraph::SocialGraph;
use dynastar_workloads::tpcc::{self, schema, Tpcc, TpccScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How benchmark state is initially placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniformly random (DynaStar's t=0 in Figures 2 and 6).
    Random,
    /// Warehouse-aligned (TPC-C's natural static placement; what S-SMR\*
    /// uses for Figure 3).
    Aligned,
    /// Partitioner-optimized from the co-access graph (S-SMR\* for the
    /// social network).
    Optimized,
}

/// Parameters for a TPC-C deployment.
#[derive(Debug, Clone)]
pub struct TpccSetup {
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Scale (warehouses, customers, items).
    pub scale: TpccScale,
    /// Number of partitions.
    pub partitions: u32,
    /// Replication scheme.
    pub mode: Mode,
    /// Initial placement of districts/warehouses.
    pub placement: Placement,
    /// Master seed.
    pub seed: u64,
    /// Repartitioning threshold (`u64::MAX` disables).
    pub repartition_threshold: u64,
    /// Leader-side batching / pipelining knobs for every consensus group.
    pub batch: BatchConfig,
}

impl TpccSetup {
    /// A default setup: `partitions` partitions, one warehouse each.
    pub fn new(partitions: u32, mode: Mode) -> Self {
        TpccSetup {
            min_plan_interval: SimDuration::from_secs(40),
            scale: TpccScale { warehouses: partitions, customers_per_district: 30, items: 200 },
            partitions,
            mode,
            placement: Placement::Aligned,
            seed: 1,
            repartition_threshold: if mode == Mode::Dynastar { 3_000 } else { u64::MAX },
            batch: BatchConfig::UNBATCHED,
        }
    }
}

/// Builds a TPC-C cluster per `setup` (state preloaded, no clients yet).
pub fn tpcc_cluster(setup: &TpccSetup) -> Cluster<Tpcc> {
    let config = ClusterConfig {
        partitions: setup.partitions,
        replicas: 3,
        mode: setup.mode,
        seed: setup.seed,
        repartition_threshold: setup.repartition_threshold,
        min_plan_interval: setup.min_plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(100),
        service_time: SimDuration::from_micros(150),
        batch: setup.batch,
        ..ClusterConfig::default()
    };
    let keys = tpcc::keys(&setup.scale);
    let map: Vec<(dynastar_core::LocKey, PartitionId)> = match setup.placement {
        Placement::Random => {
            let mut rng = StdRng::seed_from_u64(setup.seed ^ 0xBEEF);
            placement::random(keys, setup.partitions, &mut rng).into_iter().collect()
        }
        Placement::Aligned | Placement::Optimized => keys
            .into_iter()
            .map(|k| {
                let w = if k.0 >= (1 << 40) {
                    (k.0 - (1 << 40)) as u32
                } else {
                    (k.0 / schema::DISTRICTS_PER_WAREHOUSE as u64) as u32
                };
                (k, PartitionId(w % setup.partitions))
            })
            .collect(),
    };
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, p);
    }
    b.with_vars(tpcc::rows(&setup.scale));
    b.build()
}

/// Parameters for a Chirper deployment.
#[derive(Debug, Clone)]
pub struct ChirperSetup {
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Number of users in the synthetic social graph.
    pub users: usize,
    /// Follows per user in the Barabási–Albert generator.
    pub follows_per_user: usize,
    /// Number of partitions.
    pub partitions: u32,
    /// Replication scheme.
    pub mode: Mode,
    /// Initial placement of users.
    pub placement: Placement,
    /// Master seed.
    pub seed: u64,
    /// Repartitioning threshold (`u64::MAX` disables).
    pub repartition_threshold: u64,
    /// Leader-side batching / pipelining knobs for every consensus group.
    pub batch: BatchConfig,
}

impl ChirperSetup {
    /// A default setup scaled for simulation speed (the Higgs dataset's
    /// qualitative shape at 1/100 size; see DESIGN.md).
    pub fn new(partitions: u32, mode: Mode) -> Self {
        ChirperSetup {
            min_plan_interval: SimDuration::from_secs(40),
            users: 2_000,
            follows_per_user: 6,
            partitions,
            mode,
            placement: if mode == Mode::Dynastar {
                Placement::Random
            } else {
                Placement::Optimized
            },
            seed: 1,
            repartition_threshold: if mode == Mode::Dynastar { 4_000 } else { u64::MAX },
            batch: BatchConfig::UNBATCHED,
        }
    }
}

/// Builds a Chirper cluster and its shared social graph (state preloaded,
/// no clients yet). The returned graph handle feeds the workload
/// generators so declared variable sets stay coherent.
pub fn chirper_cluster(setup: &ChirperSetup) -> (Cluster<Chirper>, Arc<Mutex<SocialGraph>>) {
    let mut rng = StdRng::seed_from_u64(setup.seed ^ 0x5AFE);
    let graph = SocialGraph::barabasi_albert(setup.users, setup.follows_per_user, &mut rng);
    let config = ClusterConfig {
        partitions: setup.partitions,
        replicas: 3,
        mode: setup.mode,
        seed: setup.seed,
        repartition_threshold: setup.repartition_threshold,
        min_plan_interval: setup.min_plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(100),
        service_time: SimDuration::from_micros(150),
        batch: setup.batch,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let map: Vec<(dynastar_core::LocKey, PartitionId)> = match setup.placement {
        Placement::Random => {
            placement::random(keys, setup.partitions, &mut rng).into_iter().collect()
        }
        Placement::Aligned => placement::round_robin(keys, setup.partitions).into_iter().collect(),
        Placement::Optimized => placement::optimized(
            keys,
            graph.coaccess_edges().map(|(a, b)| (Chirper::key(a), Chirper::key(b), 1)),
            setup.partitions,
            setup.seed,
        )
        .into_iter()
        .collect(),
    };
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, p);
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), std::sync::Arc::new(user))
    }));
    (b.build(), Arc::new(Mutex::new(graph)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcc_setup_builds() {
        let mut setup = TpccSetup::new(2, Mode::Dynastar);
        setup.scale = TpccScale { warehouses: 2, customers_per_district: 5, items: 20 };
        let cluster = tpcc_cluster(&setup);
        assert_eq!(cluster.config.partitions, 2);
    }

    #[test]
    fn chirper_setup_builds_both_placements() {
        for mode in [Mode::Dynastar, Mode::SSmr] {
            let mut setup = ChirperSetup::new(2, mode);
            setup.users = 100;
            let (cluster, graph) = chirper_cluster(&setup);
            assert_eq!(cluster.config.partitions, 2);
            assert_eq!(graph.lock().unwrap().users(), 100);
        }
    }
}
