//! Cluster construction shared by the experiment binaries.

use std::sync::{Arc, Mutex};

use dynastar_core::server::{ExecConfig, ServerConfig};
use dynastar_core::{BatchConfig, Cluster, ClusterBuilder, ClusterConfig, Mode, PartitionId};
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{Chirper, ChirperUser};
use dynastar_workloads::placement;
use dynastar_workloads::socialgraph::SocialGraph;
use dynastar_workloads::tpcc::{self, schema, Tpcc, TpccScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How benchmark state is initially placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniformly random (DynaStar's t=0 in Figures 2 and 6).
    Random,
    /// Warehouse-aligned (TPC-C's natural static placement; what S-SMR\*
    /// uses for Figure 3).
    Aligned,
    /// Partitioner-optimized from the co-access graph (S-SMR\* for the
    /// social network).
    Optimized,
}

/// Parameters for a TPC-C deployment.
#[derive(Debug, Clone)]
pub struct TpccSetup {
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Scale (warehouses, customers, items).
    pub scale: TpccScale,
    /// Number of partitions.
    pub partitions: u32,
    /// Replication scheme.
    pub mode: Mode,
    /// Initial placement of districts/warehouses.
    pub placement: Placement,
    /// Master seed.
    pub seed: u64,
    /// Repartitioning threshold (`u64::MAX` disables).
    pub repartition_threshold: u64,
    /// Leader-side batching / pipelining knobs for every consensus group.
    pub batch: BatchConfig,
    /// Oracle warm-start (incremental) repartitioning.
    pub warm_plans: bool,
    /// Warm-plan quality gate (ratio vs the last full run's cut).
    pub warm_quality_ratio: f64,
    /// Modelled parallel execution workers per replica (1 = serial).
    pub exec_workers: u32,
}

impl TpccSetup {
    /// A default setup: `partitions` partitions, one warehouse each.
    pub fn new(partitions: u32, mode: Mode) -> Self {
        TpccSetup {
            min_plan_interval: SimDuration::from_secs(40),
            scale: TpccScale { warehouses: partitions, customers_per_district: 30, items: 200 },
            partitions,
            mode,
            placement: Placement::Aligned,
            seed: 1,
            repartition_threshold: if mode == Mode::Dynastar { 3_000 } else { u64::MAX },
            batch: BatchConfig::UNBATCHED,
            warm_plans: true,
            warm_quality_ratio: 1.1,
            exec_workers: 1,
        }
    }
}

/// Builds a TPC-C cluster per `setup` (state preloaded, no clients yet).
pub fn tpcc_cluster(setup: &TpccSetup) -> Cluster<Tpcc> {
    let config = ClusterConfig {
        partitions: setup.partitions,
        replicas: 3,
        mode: setup.mode,
        seed: setup.seed,
        repartition_threshold: setup.repartition_threshold,
        min_plan_interval: setup.min_plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(100),
        exec: ExecConfig::pool(setup.exec_workers, SimDuration::from_micros(150)),
        batch: setup.batch,
        warm_plans: setup.warm_plans,
        warm_quality_ratio: setup.warm_quality_ratio,
        ..ClusterConfig::default()
    };
    let keys = tpcc::keys(&setup.scale);
    let map: Vec<(dynastar_core::LocKey, PartitionId)> = match setup.placement {
        Placement::Random => {
            let mut rng = StdRng::seed_from_u64(setup.seed ^ 0xBEEF);
            placement::random(keys, setup.partitions, &mut rng).into_iter().collect()
        }
        Placement::Aligned | Placement::Optimized => keys
            .into_iter()
            .map(|k| {
                let w = if k.0 >= (1 << 40) {
                    (k.0 - (1 << 40)) as u32
                } else {
                    (k.0 / schema::DISTRICTS_PER_WAREHOUSE as u64) as u32
                };
                (k, PartitionId(w % setup.partitions))
            })
            .collect(),
    };
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, p);
    }
    b.with_vars(tpcc::rows(&setup.scale));
    b.build()
}

/// Parameters for a Chirper deployment.
#[derive(Debug, Clone)]
pub struct ChirperSetup {
    /// Minimum time between repartitionings.
    pub min_plan_interval: SimDuration,
    /// Number of users in the synthetic social graph.
    pub users: usize,
    /// Follows per user in the Barabási–Albert generator.
    pub follows_per_user: usize,
    /// Number of partitions.
    pub partitions: u32,
    /// Replication scheme.
    pub mode: Mode,
    /// Initial placement of users.
    pub placement: Placement,
    /// Master seed.
    pub seed: u64,
    /// Repartitioning threshold (`u64::MAX` disables).
    pub repartition_threshold: u64,
    /// Leader-side batching / pipelining knobs for every consensus group.
    pub batch: BatchConfig,
    /// Oracle warm-start (incremental) repartitioning.
    pub warm_plans: bool,
    /// Warm-plan quality gate (ratio vs the last full run's cut).
    pub warm_quality_ratio: f64,
    /// Partition-server tunables (staged migration, bandwidth model,
    /// chunk timeouts). Defaults keep the classic immediate-move path.
    pub server: ServerConfig,
    /// Client retry backoff base under migration backpressure (zero =
    /// retry immediately, the historical behaviour).
    pub client_retry_backoff: SimDuration,
    /// Modelled parallel execution workers per replica (1 = serial).
    pub exec_workers: u32,
    /// Modelled per-command service time (fig10 raises this so execution,
    /// not ordering, is the bottleneck).
    pub exec_service: SimDuration,
    /// Oracle shard groups (1 = the classic single replicated oracle).
    pub oracle_shards: u32,
    /// Ordering batch / pipelining for the oracle shard groups alone
    /// (`None` = share `batch`). fig8 pins the oracle window to one
    /// in-flight instance per leader while partitions stay unbounded.
    pub oracle_batch: Option<BatchConfig>,
    /// Client-side location caching. `false` sends every command through
    /// the oracle first — the permanent-flash-crowd regime fig8's shard
    /// sweep measures. S-SMR keeps its static cache regardless.
    pub client_location_cache: bool,
    /// Preload client location caches at t = 0 (the historical default).
    /// `false` starts clients cold so the first seconds exercise the
    /// oracle query path before caches fill.
    pub warm_client_caches: bool,
}

impl ChirperSetup {
    /// A default setup scaled for simulation speed (the Higgs dataset's
    /// qualitative shape at 1/100 size; see DESIGN.md).
    pub fn new(partitions: u32, mode: Mode) -> Self {
        ChirperSetup {
            min_plan_interval: SimDuration::from_secs(40),
            users: 2_000,
            follows_per_user: 6,
            partitions,
            mode,
            placement: if mode == Mode::Dynastar {
                Placement::Random
            } else {
                Placement::Optimized
            },
            seed: 1,
            repartition_threshold: if mode == Mode::Dynastar { 4_000 } else { u64::MAX },
            batch: BatchConfig::UNBATCHED,
            warm_plans: true,
            warm_quality_ratio: 1.1,
            server: ServerConfig::default(),
            client_retry_backoff: SimDuration::ZERO,
            exec_workers: 1,
            exec_service: SimDuration::from_micros(150),
            oracle_shards: 1,
            oracle_batch: None,
            client_location_cache: true,
            warm_client_caches: true,
        }
    }
}

/// Builds a Chirper cluster and its shared social graph (state preloaded,
/// no clients yet). The returned graph handle feeds the workload
/// generators so declared variable sets stay coherent.
pub fn chirper_cluster(setup: &ChirperSetup) -> (Cluster<Chirper>, Arc<Mutex<SocialGraph>>) {
    let mut rng = StdRng::seed_from_u64(setup.seed ^ 0x5AFE);
    let graph = SocialGraph::barabasi_albert(setup.users, setup.follows_per_user, &mut rng);
    let config = ClusterConfig {
        partitions: setup.partitions,
        replicas: 3,
        mode: setup.mode,
        seed: setup.seed,
        repartition_threshold: setup.repartition_threshold,
        min_plan_interval: setup.min_plan_interval,
        warm_client_caches: setup.warm_client_caches,
        compute_base: SimDuration::from_millis(100),
        exec: ExecConfig::pool(setup.exec_workers, setup.exec_service),
        batch: setup.batch,
        warm_plans: setup.warm_plans,
        warm_quality_ratio: setup.warm_quality_ratio,
        server: setup.server.clone(),
        client_retry_backoff: setup.client_retry_backoff,
        oracle_shards: setup.oracle_shards,
        oracle_batch: setup.oracle_batch,
        client_location_cache: setup.client_location_cache,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let map: Vec<(dynastar_core::LocKey, PartitionId)> = match setup.placement {
        Placement::Random => {
            placement::random(keys, setup.partitions, &mut rng).into_iter().collect()
        }
        Placement::Aligned => placement::round_robin(keys, setup.partitions).into_iter().collect(),
        Placement::Optimized => placement::optimized(
            keys,
            graph.coaccess_edges().map(|(a, b)| (Chirper::key(a), Chirper::key(b), 1)),
            setup.partitions,
            setup.seed,
        )
        .into_iter()
        .collect(),
    };
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, p);
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), std::sync::Arc::new(user))
    }));
    (b.build(), Arc::new(Mutex::new(graph)))
}

/// Runs every job in `inputs` through `run` on a pool of scoped worker
/// threads, returning results **in input order**.
///
/// Each simulation is single-threaded and deterministic from its seed, so a
/// sweep over seeds or configurations is embarrassingly parallel: the
/// figure binaries spend minutes running points sequentially that fan out
/// across cores with identical output. Workers claim jobs from a shared
/// atomic cursor (no per-thread chunking, so one slow point — e.g. the
/// 8-partition row next to the 1-partition row — does not idle the rest of
/// the pool), and results land in a slot table indexed by input position,
/// keeping output order independent of scheduling.
///
/// `threads` caps the pool; `0` means one per available core. The pool
/// never exceeds the number of jobs. A panic inside `run` is contained
/// to its own job: the rest of the sweep still completes, and
/// `run_parallel` then reports every failed job — index and panic
/// message — in a single error on the calling thread, instead of an
/// opaque worker-thread panic tearing down the pool mid-sweep.
pub fn run_parallel<C, R, F>(inputs: Vec<C>, threads: usize, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = inputs.len();
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let pool = if threads == 0 { cores } else { threads }.min(n).max(1);

    // Jobs move into slots the workers drain; results fill a parallel
    // slot table so position i of the output is input i's result. A
    // slot holds Err(panic message) when its job blew up.
    let jobs: Vec<Mutex<Option<C>>> = inputs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A poisoned slot only means some thread panicked while
                // holding the lock; the payload underneath is still
                // intact, so recover it rather than cascading the panic.
                let Some(job) = jobs[i].lock().unwrap_or_else(|p| p.into_inner()).take() else {
                    // The atomic cursor hands out each index once, so the
                    // slot can't already be drained — but an empty slot is
                    // a job to skip, not a reason to kill the pool.
                    continue;
                };
                let out = catch_unwind(AssertUnwindSafe(|| run(job)))
                    .map_err(|payload| panic_message(&*payload));
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (i, slot) in results.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(Ok(r)) => out.push(r),
            Some(Err(msg)) => failures.push(format!("  job {i}: {msg}")),
            None => failures.push(format!("  job {i}: no result (worker never stored one)")),
        }
    }
    if !failures.is_empty() {
        panic!("run_parallel: {} of {n} job(s) failed:\n{}", failures.len(), failures.join("\n"));
    }
    out
}

/// Best-effort extraction of a panic payload's message; `panic!` with a
/// string literal or a formatted message covers essentially every panic
/// the sweep jobs can raise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcc_setup_builds() {
        let mut setup = TpccSetup::new(2, Mode::Dynastar);
        setup.scale = TpccScale { warehouses: 2, customers_per_district: 5, items: 20 };
        let cluster = tpcc_cluster(&setup);
        assert_eq!(cluster.config.partitions, 2);
    }

    #[test]
    fn run_parallel_preserves_input_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = run_parallel(inputs.clone(), 4, |x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_reports_failed_jobs_instead_of_worker_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Job 3 panics; the other jobs must still complete, and the
        // error reported on the calling thread must name the failed job
        // and carry its panic message.
        let completed = AtomicUsize::new(0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_parallel((0..8u64).collect(), 4, |x| {
                if x == 3 {
                    panic!("point {x} diverged");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }))
        .expect_err("a failed job must surface as an error");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("aggregated failure report is a formatted string");
        assert!(msg.contains("1 of 8 job(s) failed"), "unexpected report: {msg}");
        assert!(msg.contains("job 3: point 3 diverged"), "unexpected report: {msg}");
        assert_eq!(completed.load(Ordering::Relaxed), 7, "healthy jobs must all finish");
    }

    #[test]
    fn run_parallel_handles_more_threads_than_jobs() {
        assert_eq!(run_parallel(vec![7u32], 16, |x| x + 1), vec![8]);
        assert_eq!(run_parallel(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
    }

    #[test]
    fn run_parallel_zero_threads_uses_all_cores() {
        let out = run_parallel((0..8u32).collect(), 0, |x| x);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_matches_sequential_simulation() {
        // The property the figure binaries rely on: a simulation run on a
        // worker thread produces bit-identical results to one run inline.
        let run_point = |seed: u64| {
            let mut setup = TpccSetup::new(1, Mode::Dynastar);
            setup.scale = TpccScale { warehouses: 1, customers_per_district: 5, items: 20 };
            setup.seed = seed;
            let mut cluster = tpcc_cluster(&setup);
            let tracker = tpcc::order_tracker();
            cluster.add_client(dynastar_workloads::tpcc::TpccWorkload::new(
                setup.scale,
                0,
                Arc::clone(&tracker),
            ));
            cluster.run_for(SimDuration::from_millis(500));
            cluster.sim.events_processed()
        };
        let seeds = vec![1u64, 2, 3];
        let sequential: Vec<u64> = seeds.iter().map(|&s| run_point(s)).collect();
        let parallel = run_parallel(seeds, 3, run_point);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn chirper_setup_builds_both_placements() {
        for mode in [Mode::Dynastar, Mode::SSmr] {
            let mut setup = ChirperSetup::new(2, mode);
            setup.users = 100;
            let (cluster, graph) = chirper_cluster(&setup);
            assert_eq!(cluster.config.partitions, 2);
            assert_eq!(graph.lock().unwrap().users(), 100);
        }
    }
}
