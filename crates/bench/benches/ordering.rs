//! Criterion micro-benchmarks for the ordering substrate: Multi-Paxos
//! command throughput and atomic multicast (single- and multi-group).
//!
//! These quantify the per-command protocol overhead that underlies every
//! figure's absolute numbers.

use std::collections::{BTreeMap, VecDeque};

use criterion::{criterion_group, criterion_main, Criterion};
use dynastar_amcast::{GroupId, McastMember, McastWire, MemberId, MsgId, Topology};
use dynastar_paxos::{GroupConfig, PaxosMsg, PaxosReplica};

/// Drives a 3-replica Paxos group through `n` commands, message by
/// message, and returns the total number delivered at the leader.
fn paxos_run(n: u64) -> u64 {
    let cfg = GroupConfig::new(3);
    let mut replicas: Vec<PaxosReplica<u64>> =
        (0..3).map(|i| PaxosReplica::new(i, cfg.clone())).collect();
    let mut queue: VecDeque<(usize, usize, PaxosMsg<u64>)> = VecDeque::new();
    let mut delivered = 0;
    for v in 0..n {
        let out = replicas[0].propose(v);
        for (to, m) in out.outgoing {
            queue.push_back((0, to, m));
        }
        delivered += out.decided.len() as u64;
        while let Some((from, to, m)) = queue.pop_front() {
            let out = replicas[to].on_message(from, m);
            for (t, m) in out.outgoing {
                queue.push_back((to, t, m));
            }
            if to == 0 {
                delivered += out.decided.len() as u64;
            }
        }
    }
    delivered
}

/// Runs `n` atomic multicasts to `dest_groups` groups (of 2 replicas each)
/// and returns deliveries at member (0,0).
fn amcast_run(n: u32, dest_groups: u32) -> u64 {
    let topo = Topology::uniform(dest_groups as usize, 2);
    let mut members: BTreeMap<MemberId, McastMember<u64>> = topo
        .groups()
        .flat_map(|g| topo.members_of(g).collect::<Vec<_>>())
        .map(|m| (m, McastMember::new(m, topo.clone())))
        .collect();
    let mut queue: VecDeque<(MemberId, McastWire<u64>)> = VecDeque::new();
    let sender = MemberId::new(GroupId(0), 0);
    let dests: Vec<GroupId> = (0..dest_groups).map(GroupId).collect();
    for i in 0..n {
        let out =
            members.get_mut(&sender).unwrap().submit(MsgId::new(1, i), dests.clone(), i as u64);
        queue.extend(out.outgoing);
        while let Some((to, wire)) = queue.pop_front() {
            let out = members.get_mut(&to).unwrap().on_message(wire);
            queue.extend(out.outgoing);
        }
    }
    members[&sender].delivered_count()
}

fn bench_paxos(c: &mut Criterion) {
    let mut c = c.benchmark_group("paxos");
    c.sample_size(10);
    c.bench_function("paxos_1k_commands_n3", |b| {
        b.iter(|| {
            let d = paxos_run(1_000);
            assert_eq!(d, 1_000);
        })
    });
}

fn bench_amcast(c: &mut Criterion) {
    let mut c = c.benchmark_group("amcast");
    c.sample_size(10);
    c.bench_function("amcast_500_single_group", |b| {
        b.iter(|| {
            let d = amcast_run(500, 1);
            assert_eq!(d, 500);
        })
    });
    c.bench_function("amcast_500_two_groups", |b| {
        b.iter(|| {
            let d = amcast_run(500, 2);
            assert_eq!(d, 500);
        })
    });
}

criterion_group!(benches, bench_paxos, bench_amcast);
criterion_main!(benches);
