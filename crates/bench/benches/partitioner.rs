//! Criterion micro-benchmarks for the multilevel graph partitioner — the
//! oracle's hot computational path (backs Figure 7's scaling claim at
//! micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynastar_partitioner::{hash_partition, partition, GraphBuilder, PartitionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn power_law_graph(n: u32, seed: u64) -> dynastar_partitioner::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.add_vertex(n - 1);
    for v in 1..n {
        for _ in 0..4 {
            let exp: f64 = rng.gen::<f64>();
            let u = ((v as f64) * exp * exp) as u32;
            if u != v {
                b.add_edge(v, u.min(v - 1), 1 + rng.gen_range(0..4u64));
            }
        }
    }
    b.build()
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_partition_k8");
    group.sample_size(10);
    for &n in &[1_000u32, 10_000] {
        let g = power_law_graph(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| partition(g, 8, &PartitionConfig::default()))
        });
    }
    group.finish();
}

fn bench_edge_cut(c: &mut Criterion) {
    let g = power_law_graph(50_000, 7);
    let p = hash_partition(g.vertex_count(), 8);
    c.bench_function("edge_cut_50k", |b| b.iter(|| p.edge_cut(&g)));
}

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("graph_build_10k", |b| b.iter(|| power_law_graph(10_000, 7)));
}

criterion_group!(benches, bench_partition, bench_edge_cut, bench_graph_build);
criterion_main!(benches);
