//! Criterion macro-benchmark: full simulated cluster runs (events/second
//! of the simulator itself, and end-to-end command throughput per mode).
//!
//! This is the ablation harness for DESIGN.md's mode comparison: identical
//! workload, three replication schemes.

use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynastar_core::metric_names as mn;
use dynastar_core::{ClusterBuilder, ClusterConfig, Mode, PartitionId};
use dynastar_runtime::SimDuration;
use dynastar_workloads::chirper::{Chirper, ChirperMix, ChirperUser, ChirperWorkload};
use dynastar_workloads::placement;
use dynastar_workloads::socialgraph::SocialGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_mode(mode: Mode) -> u64 {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = SocialGraph::barabasi_albert(300, 4, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 2,
        mode,
        seed: 11,
        repartition_threshold: u64::MAX,
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let map = placement::random(keys, 2, &mut rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), std::sync::Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    for _ in 0..4 {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX));
    }
    cluster.run_for(SimDuration::from_secs(5));
    cluster.metrics().counter(mn::CMD_COMPLETED)
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_5s_chirper");
    group.sample_size(10);
    for mode in [Mode::Dynastar, Mode::SSmr, Mode::DsSmr] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                let done = run_mode(mode);
                assert!(done > 0);
                done
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
