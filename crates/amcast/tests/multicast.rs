//! Integration and property tests for the atomic multicast layer.
//!
//! The properties from §2.2 of the DynaStar paper are checked directly:
//! validity, uniform agreement, integrity, atomic (acyclic) order and
//! prefix order. FIFO order is provided by the transport layer
//! ([`dynastar_runtime::fifo`]) and covered there.

use std::collections::{BTreeMap, HashMap, VecDeque};

use dynastar_amcast::{Delivery, GroupId, McastMember, McastWire, MemberId, MsgId, Topology};
use dynastar_paxos::GroupConfig;
use proptest::prelude::*;

/// An in-memory network of multicast members with a controllable schedule.
struct Net {
    members: BTreeMap<MemberId, McastMember<u64>>,
    queue: VecDeque<(MemberId, McastWire<u64>)>,
    delivered: BTreeMap<MemberId, Vec<Delivery<u64>>>,
    down: Vec<MemberId>,
}

impl Net {
    fn new(topo: &Topology) -> Self {
        let mut members = BTreeMap::new();
        for g in topo.groups() {
            for m in topo.members_of(g) {
                // Fast election timing: these tests drive ticks directly.
                let cfg = GroupConfig::new(topo.size_of(g));
                members.insert(m, McastMember::with_group_config(m, topo.clone(), cfg));
            }
        }
        let delivered = members.keys().map(|&m| (m, Vec::new())).collect();
        Net { members, queue: VecDeque::new(), delivered, down: Vec::new() }
    }

    fn absorb(&mut self, at: MemberId, out: dynastar_amcast::McastOutput<u64>) {
        self.queue.extend(out.outgoing);
        self.delivered.get_mut(&at).unwrap().extend(out.delivered);
    }

    fn submit_at(&mut self, at: MemberId, mid: MsgId, dests: Vec<GroupId>, payload: u64) {
        let out = self.members.get_mut(&at).unwrap().submit(mid, dests, payload);
        self.absorb(at, out);
    }

    fn tick_all(&mut self) {
        let ids: Vec<MemberId> = self.members.keys().copied().collect();
        for id in ids {
            if self.down.contains(&id) {
                continue;
            }
            let out = self.members.get_mut(&id).unwrap().tick();
            self.absorb(id, out);
        }
    }

    fn deliver_one(&mut self, k: usize) {
        if self.queue.is_empty() {
            return;
        }
        let k = k % self.queue.len();
        let (to, wire) = self.queue.remove(k).unwrap();
        if self.down.contains(&to) {
            return;
        }
        let out = self.members.get_mut(&to).unwrap().on_message(wire);
        self.absorb(to, out);
    }

    fn drop_one(&mut self, k: usize) {
        if !self.queue.is_empty() {
            let k = k % self.queue.len();
            self.queue.remove(k);
        }
    }

    /// Runs a fixed budget of tick+drain rounds so elections and retries
    /// (which need many quiet ticks) get a chance to fire.
    fn settle(&mut self) {
        for _ in 0..120 {
            while let Some((to, wire)) = self.queue.pop_front() {
                if self.down.contains(&to) {
                    continue;
                }
                let out = self.members.get_mut(&to).unwrap().on_message(wire);
                self.absorb(to, out);
            }
            self.tick_all();
        }
        // Final drain.
        while let Some((to, wire)) = self.queue.pop_front() {
            if self.down.contains(&to) {
                continue;
            }
            let out = self.members.get_mut(&to).unwrap().on_message(wire);
            self.absorb(to, out);
        }
    }

    fn delivered_mids(&self, m: MemberId) -> Vec<MsgId> {
        self.delivered[&m].iter().map(|d| d.mid).collect()
    }

    /// Integrity: no member delivers a message twice.
    fn check_integrity(&self) {
        for (m, log) in &self.delivered {
            let mut seen = std::collections::HashSet::new();
            for d in log {
                assert!(seen.insert(d.mid), "{m} delivered {} twice", d.mid);
            }
        }
    }

    /// Uniform agreement: all live members of a group deliver the same
    /// sequence.
    fn check_group_agreement(&self, topo: &Topology) {
        for g in topo.groups() {
            let live: Vec<MemberId> =
                topo.members_of(g).filter(|m| !self.down.contains(m)).collect();
            if live.len() < 2 {
                continue;
            }
            let reference = self.delivered_mids(live[0]);
            for &m in &live[1..] {
                assert_eq!(
                    self.delivered_mids(m),
                    reference,
                    "members {} and {} of {g} disagree",
                    live[0],
                    m
                );
            }
        }
    }

    /// Prefix order: any two members order their common messages the same
    /// way (implies atomic/acyclic order).
    fn check_prefix_order(&self) {
        let members: Vec<MemberId> = self.delivered.keys().copied().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let a = self.delivered_mids(members[i]);
                let b = self.delivered_mids(members[j]);
                let pos_a: HashMap<MsgId, usize> =
                    a.iter().enumerate().map(|(k, &m)| (m, k)).collect();
                let pos_b: HashMap<MsgId, usize> =
                    b.iter().enumerate().map(|(k, &m)| (m, k)).collect();
                let common: Vec<MsgId> =
                    a.iter().copied().filter(|m| pos_b.contains_key(m)).collect();
                for x in 0..common.len() {
                    for y in (x + 1)..common.len() {
                        let (mx, my) = (common[x], common[y]);
                        let same = (pos_a[&mx] < pos_a[&my]) == (pos_b[&mx] < pos_b[&my]);
                        assert!(
                            same,
                            "members {} and {} order {} and {} differently",
                            members[i], members[j], mx, my
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn single_group_multicast_is_atomic_broadcast() {
    let topo = Topology::uniform(1, 3);
    let mut net = Net::new(&topo);
    let sender = MemberId::new(GroupId(0), 0);
    for i in 0..10 {
        net.submit_at(sender, MsgId::new(1, i), vec![GroupId(0)], i as u64);
    }
    net.settle();
    for m in topo.members_of(GroupId(0)) {
        let mids = net.delivered_mids(m);
        assert_eq!(mids.len(), 10, "{m} delivered {}", mids.len());
    }
    net.check_group_agreement(&topo);
    net.check_integrity();
}

#[test]
fn two_group_multicast_reaches_both_groups() {
    let topo = Topology::uniform(2, 3);
    let mut net = Net::new(&topo);
    let sender = MemberId::new(GroupId(0), 0);
    net.submit_at(sender, MsgId::new(1, 0), vec![GroupId(0), GroupId(1)], 42);
    net.settle();
    for g in topo.groups() {
        for m in topo.members_of(g) {
            assert_eq!(net.delivered_mids(m).len(), 1, "{m}");
            assert_eq!(net.delivered[&m][0].payload, 42);
        }
    }
}

#[test]
fn interleaved_single_and_multi_group_messages_stay_ordered() {
    let topo = Topology::uniform(3, 2);
    let mut net = Net::new(&topo);
    let s0 = MemberId::new(GroupId(0), 0);
    let s1 = MemberId::new(GroupId(1), 0);
    let mut n = 0;
    for i in 0..8 {
        net.submit_at(s0, MsgId::new(1, i), vec![GroupId(0), GroupId(1)], n);
        n += 1;
        net.submit_at(s1, MsgId::new(2, i), vec![GroupId(1), GroupId(2)], n);
        n += 1;
        net.submit_at(s0, MsgId::new(3, i), vec![GroupId(0)], n);
        n += 1;
    }
    net.settle();
    // Everyone in group 1 sees all 16 messages addressed to it.
    for m in topo.members_of(GroupId(1)) {
        assert_eq!(net.delivered_mids(m).len(), 16, "{m}");
    }
    net.check_group_agreement(&topo);
    net.check_prefix_order();
    net.check_integrity();
}

#[test]
fn duplicate_submits_deliver_once() {
    let topo = Topology::uniform(2, 3);
    let mut net = Net::new(&topo);
    let mid = MsgId::new(9, 0);
    // Two different replicas submit the same id (replicated-sender pattern).
    net.submit_at(MemberId::new(GroupId(0), 0), mid, vec![GroupId(0), GroupId(1)], 5);
    net.submit_at(MemberId::new(GroupId(0), 1), mid, vec![GroupId(0), GroupId(1)], 5);
    net.settle();
    net.check_integrity();
    for g in topo.groups() {
        for m in topo.members_of(g) {
            assert_eq!(net.delivered_mids(m), vec![mid], "{m}");
        }
    }
}

#[test]
fn genuineness_uninvolved_group_stays_silent() {
    let topo = Topology::uniform(3, 2);
    let mut net = Net::new(&topo);
    net.submit_at(MemberId::new(GroupId(0), 0), MsgId::new(1, 0), vec![GroupId(0), GroupId(1)], 1);
    net.settle();
    // Group 2 neither delivers nor holds protocol state for the message.
    for m in topo.members_of(GroupId(2)) {
        assert!(net.delivered_mids(m).is_empty(), "{m} delivered a message not addressed to it");
        assert_eq!(net.members[&m].clock(), 0, "{m}'s clock moved for an unrelated message");
    }
}

#[test]
fn minority_crash_in_a_group_does_not_block_multicast() {
    let topo = Topology::uniform(2, 3);
    let mut net = Net::new(&topo);
    // Crash one (non-leader) replica in each group.
    net.down.push(MemberId::new(GroupId(0), 2));
    net.down.push(MemberId::new(GroupId(1), 2));
    for i in 0..5 {
        net.submit_at(
            MemberId::new(GroupId(0), 0),
            MsgId::new(1, i),
            vec![GroupId(0), GroupId(1)],
            i as u64,
        );
    }
    net.settle();
    for g in topo.groups() {
        for m in topo.members_of(g) {
            if net.down.contains(&m) {
                continue;
            }
            assert_eq!(net.delivered_mids(m).len(), 5, "{m}");
        }
    }
    net.check_prefix_order();
}

#[test]
fn leader_crash_mid_multicast_recovers() {
    let topo = Topology::uniform(2, 3);
    let mut net = Net::new(&topo);
    // Start a multi-group multicast, deliver a few protocol messages, then
    // crash both initial leaders.
    net.submit_at(MemberId::new(GroupId(0), 1), MsgId::new(1, 0), vec![GroupId(0), GroupId(1)], 7);
    for _ in 0..4 {
        net.deliver_one(0);
    }
    net.down.push(MemberId::new(GroupId(0), 0));
    net.down.push(MemberId::new(GroupId(1), 0));
    net.settle();
    for g in topo.groups() {
        for m in topo.members_of(g) {
            if net.down.contains(&m) {
                continue;
            }
            assert_eq!(net.delivered_mids(m), vec![MsgId::new(1, 0)], "{m}");
        }
    }
}

#[test]
fn crashed_member_recovers_from_peer_snapshots_and_rejoins() {
    let topo = Topology::uniform(2, 3);
    let mut net = Net::new(&topo);
    for i in 0..6 {
        net.submit_at(
            MemberId::new(GroupId(0), 0),
            MsgId::new(1, i),
            vec![GroupId(0), GroupId(1)],
            i as u64,
        );
    }
    net.settle();
    // Replica 2 of group 0 crashes with total amnesia...
    let victim = MemberId::new(GroupId(0), 2);
    let delivered_before = net.delivered_mids(victim).len();
    assert_eq!(delivered_before, 6);
    let floor = net.members[&victim].promised();
    // ...and rebuilds from a quorum of its peers' snapshots.
    let snaps = vec![
        net.members[&MemberId::new(GroupId(0), 0)].snapshot(),
        net.members[&MemberId::new(GroupId(0), 1)].snapshot(),
    ];
    let cfg = GroupConfig::new(3);
    let (rebuilt, out, donor) = McastMember::recover(victim, topo.clone(), cfg, floor, &snaps);
    assert!(donor < snaps.len());
    net.members.insert(victim, rebuilt);
    net.delivered.get_mut(&victim).unwrap().clear();
    net.absorb(victim, out);
    assert!(!net.members[&victim].is_leader());
    // The snapshot fast-forwards past already-delivered messages: nothing
    // re-delivers, and new traffic flows to the recovered member normally.
    assert!(net.delivered_mids(victim).is_empty());
    for i in 6..10 {
        net.submit_at(
            MemberId::new(GroupId(0), 0),
            MsgId::new(1, i),
            vec![GroupId(0), GroupId(1)],
            i as u64,
        );
    }
    net.settle();
    let mids = net.delivered_mids(victim);
    assert_eq!(mids, (6..10).map(|i| MsgId::new(1, i)).collect::<Vec<_>>());
    net.check_integrity();
    net.check_prefix_order();
}

/// A randomized schedule action.
#[derive(Debug, Clone)]
enum Action {
    Submit { sender: usize, dest_mask: u8 },
    Deliver { k: usize },
    Drop { k: usize },
    Tick,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        2 => (0usize..6, 1u8..8).prop_map(|(sender, dest_mask)| Action::Submit { sender, dest_mask }),
        10 => (0usize..64).prop_map(|k| Action::Deliver { k }),
        1 => (0usize..64).prop_map(|k| Action::Drop { k }),
        3 => Just(Action::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Integrity, per-group agreement and global prefix order hold for
    /// three groups of two replicas under arbitrary reordering and loss.
    #[test]
    fn multicast_order_properties(actions in prop::collection::vec(action_strategy(), 1..150)) {
        let topo = Topology::uniform(3, 2);
        let mut net = Net::new(&topo);
        let mut seq = 0u32;
        for a in &actions {
            match *a {
                Action::Submit { sender, dest_mask } => {
                    let g = GroupId((sender % 3) as u32);
                    let m = MemberId::new(g, sender / 3 % 2);
                    let dests: Vec<GroupId> = (0..3)
                        .filter(|i| dest_mask & (1 << i) != 0)
                        .map(|i| GroupId(i as u32))
                        .collect();
                    net.submit_at(m, MsgId::new(100 + sender as u64, seq), dests, seq as u64);
                    seq += 1;
                }
                Action::Deliver { k } => net.deliver_one(k),
                Action::Drop { k } => net.drop_one(k),
                Action::Tick => net.tick_all(),
            }
        }
        net.settle();
        net.check_integrity();
        net.check_group_agreement(&topo);
        net.check_prefix_order();
    }

    /// Validity under a clean network: every submitted message is
    /// delivered by every member of every destination group.
    #[test]
    fn multicast_validity_clean(dest_masks in prop::collection::vec(1u8..8, 1..20)) {
        let topo = Topology::uniform(3, 2);
        let mut net = Net::new(&topo);
        let sender = MemberId::new(GroupId(0), 0);
        let mut expected: BTreeMap<GroupId, Vec<MsgId>> = BTreeMap::new();
        for (i, &mask) in dest_masks.iter().enumerate() {
            let dests: Vec<GroupId> = (0..3)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| GroupId(b as u32))
                .collect();
            let mid = MsgId::new(1, i as u32);
            for &g in &dests {
                expected.entry(g).or_default().push(mid);
            }
            net.submit_at(sender, mid, dests, i as u64);
        }
        net.settle();
        for g in topo.groups() {
            let want: std::collections::HashSet<MsgId> =
                expected.get(&g).cloned().unwrap_or_default().into_iter().collect();
            for m in topo.members_of(g) {
                let got: std::collections::HashSet<MsgId> =
                    net.delivered_mids(m).into_iter().collect();
                prop_assert_eq!(&got, &want, "member {}", m);
            }
        }
    }
}

/// Randomized schedules with crashes: safety properties must hold with a
/// minority of each 3-replica group crashed at arbitrary points.
#[derive(Debug, Clone)]
enum CrashAction {
    Submit { sender: usize, dest_mask: u8 },
    Deliver { k: usize },
    Tick,
    Crash { victim: usize },
}

fn crash_action_strategy() -> impl Strategy<Value = CrashAction> {
    prop_oneof![
        2 => (0usize..6, 1u8..4).prop_map(|(sender, dest_mask)| CrashAction::Submit { sender, dest_mask }),
        10 => (0usize..64).prop_map(|k| CrashAction::Deliver { k }),
        3 => Just(CrashAction::Tick),
        1 => (0usize..2).prop_map(|victim| CrashAction::Crash { victim }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two 3-replica groups; at most one replica per group crashes.
    /// Integrity, per-group agreement among survivors and prefix order
    /// must hold on every schedule.
    #[test]
    fn multicast_safety_under_minority_crashes(
        actions in prop::collection::vec(crash_action_strategy(), 1..120),
    ) {
        let topo = Topology::uniform(2, 3);
        let mut net = Net::new(&topo);
        let mut crashed_in_group = [false; 2];
        let mut seq = 0u32;
        for a in &actions {
            match *a {
                CrashAction::Submit { sender, dest_mask } => {
                    let g = GroupId((sender % 2) as u32);
                    let m = MemberId::new(g, sender / 2 % 3);
                    if net.down.contains(&m) {
                        continue;
                    }
                    let dests: Vec<GroupId> = (0..2)
                        .filter(|i| dest_mask & (1 << i) != 0)
                        .map(|i| GroupId(i as u32))
                        .collect();
                    if dests.is_empty() {
                        continue;
                    }
                    net.submit_at(m, MsgId::new(50 + sender as u64, seq), dests, seq as u64);
                    seq += 1;
                }
                CrashAction::Deliver { k } => net.deliver_one(k),
                CrashAction::Tick => net.tick_all(),
                CrashAction::Crash { victim } => {
                    // One crash per group, never the same replica index
                    // pattern that would exceed a minority.
                    if !crashed_in_group[victim] {
                        crashed_in_group[victim] = true;
                        // Crash replica 1 (keeps replica 0's initial
                        // leadership deterministic half the time and
                        // forces elections the other half via index 0).
                        let idx = (victim + seq as usize) % 3;
                        net.down.push(MemberId::new(GroupId(victim as u32), idx));
                    }
                }
            }
        }
        net.settle();
        net.check_integrity();
        net.check_group_agreement(&topo);
        net.check_prefix_order();
    }
}
