//! The per-replica atomic multicast state machine.

use std::collections::BTreeMap;

use dynastar_paxos::{Ballot, BatchStats, GroupConfig, PaxosReplica, RecoveryReport};
use dynastar_runtime::dedup::RotatingSet;

use crate::types::{Delivery, GroupId, LogEntry, McastWire, MemberId, MsgId, Topology};

/// Ticks between retransmissions of unacknowledged protocol steps.
const RETRY_TICKS: u64 = 8;

/// Effects of feeding one input to a [`McastMember`].
#[derive(Debug, Clone)]
pub struct McastOutput<V> {
    /// Wire messages to transmit.
    pub outgoing: Vec<(MemberId, McastWire<V>)>,
    /// Messages newly delivered, in final-timestamp order.
    pub delivered: Vec<Delivery<V>>,
}

impl<V> McastOutput<V> {
    fn new() -> Self {
        McastOutput { outgoing: Vec::new(), delivered: Vec::new() }
    }

    /// True when nothing needs to be sent or delivered.
    pub fn is_empty(&self) -> bool {
        self.outgoing.is_empty() && self.delivered.is_empty()
    }
}

/// Multicast bookkeeping for one message not yet delivered locally.
#[derive(Debug)]
struct Pending<V> {
    payload: Option<V>,
    dests: Vec<GroupId>,
    local_ts: Option<u64>,
    remote: BTreeMap<GroupId, u64>,
    final_ts: Option<u64>,
}

impl<V> Pending<V> {
    fn empty() -> Self {
        Pending {
            payload: None,
            dests: Vec::new(),
            local_ts: None,
            remote: BTreeMap::new(),
            final_ts: None,
        }
    }
}

impl<V: Clone> Clone for Pending<V> {
    fn clone(&self) -> Self {
        Pending {
            payload: self.payload.clone(),
            dests: self.dests.clone(),
            local_ts: self.local_ts,
            remote: self.remote.clone(),
            final_ts: self.final_ts,
        }
    }
}

/// One live replica's exported state, answering a crashed peer's recovery
/// request.
///
/// Combines the consensus-level [`RecoveryReport`] (needed from a *quorum*
/// of peers for Paxos safety) with a full copy of the reporter's multicast
/// bookkeeping at its log frontier (needed from the single most advanced
/// reporter, as the application snapshot). Multicast bookkeeping is
/// deterministic from the log, so any replica's copy at frontier `F` equals
/// what the crashed replica would have had at `F`.
#[derive(Debug)]
pub struct MemberSnapshot<V> {
    report: RecoveryReport<LogEntry<V>>,
    clock: u64,
    pending: BTreeMap<MsgId, Pending<V>>,
    assigned: RotatingSet<MsgId>,
    remote_seen: RotatingSet<(MsgId, GroupId)>,
    seen_submits: BTreeMap<MsgId, (Vec<GroupId>, V)>,
    seen_remote_ts: BTreeMap<(MsgId, GroupId), u64>,
    ts_out: BTreeMap<(MsgId, GroupId), (u64, u64)>,
    delivered_payloads: BTreeMap<MsgId, (Vec<GroupId>, V)>,
    ticks: u64,
    delivered_count: u64,
}

impl<V> MemberSnapshot<V> {
    /// The snapshot's log frontier (first slot not known decided).
    pub fn frontier(&self) -> dynastar_paxos::Slot {
        self.report.frontier
    }

    /// Rough size of the snapshot in transferred elements (log entries +
    /// bookkeeping rows), for transfer accounting.
    pub fn approx_elements(&self) -> u64 {
        (self.report.accepted.len()
            + self.pending.len()
            + self.seen_submits.len()
            + self.seen_remote_ts.len()
            + self.ts_out.len()
            + self.delivered_payloads.len()) as u64
    }
}

impl<V: Clone> Clone for MemberSnapshot<V> {
    fn clone(&self) -> Self {
        MemberSnapshot {
            report: self.report.clone(),
            clock: self.clock,
            pending: self.pending.clone(),
            assigned: self.assigned.clone(),
            remote_seen: self.remote_seen.clone(),
            seen_submits: self.seen_submits.clone(),
            seen_remote_ts: self.seen_remote_ts.clone(),
            ts_out: self.ts_out.clone(),
            delivered_payloads: self.delivered_payloads.clone(),
            ticks: self.ticks,
            delivered_count: self.delivered_count,
        }
    }
}

/// One replica's view of the atomic multicast protocol.
///
/// A member owns its group's [`PaxosReplica`] and replays its log to build
/// deterministic multicast state. Drive it with
/// [`McastMember::on_message`], [`McastMember::tick`] and
/// [`McastMember::submit`]; see the [crate docs](crate) for the protocol.
#[derive(Debug)]
pub struct McastMember<V> {
    me: MemberId,
    topo: Topology,
    paxos: PaxosReplica<LogEntry<V>>,
    /// The group's logical clock (deterministic from the log).
    clock: u64,
    pending: BTreeMap<MsgId, Pending<V>>,
    /// Messages whose `Assign` entry has been applied (bounded memory:
    /// duplicates older than the rotation window would reorder, but such
    /// duplicates cannot occur within protocol timescales).
    assigned: RotatingSet<MsgId>,
    /// `(mid, group)` pairs whose `Remote` entry has been applied.
    remote_seen: RotatingSet<(MsgId, GroupId)>,
    /// Submits seen but not yet assigned, kept so a replica that becomes
    /// leader can (re-)propose them.
    seen_submits: BTreeMap<MsgId, (Vec<GroupId>, V)>,
    /// Remote timestamps seen but not yet ordered in our log.
    seen_remote_ts: BTreeMap<(MsgId, GroupId), u64>,
    /// `(tick, ballot)` of our last `Assign` proposal for a message. Under
    /// an unchanged leader ballot a proposal cannot be lost (it is queued
    /// in the consensus layer's batch buffer or already in flight, and
    /// links are reliable), so retries fire only after a ballot change —
    /// re-proposing on a timer alone would flood a batching leader with
    /// duplicates faster than bounded-window slots drain them.
    proposed_assign: BTreeMap<MsgId, (u64, Ballot)>,
    /// `(tick, ballot)` of our last `Remote` entry proposal.
    proposed_remote: BTreeMap<(MsgId, GroupId), (u64, Ballot)>,
    /// Our group's timestamps that other groups still need: value is
    /// `(ts, last retransmission tick)`.
    ts_out: BTreeMap<(MsgId, GroupId), (u64, u64)>,
    /// Payloads of locally delivered messages whose timestamps other
    /// groups have not yet acknowledged (needed for retransmission).
    delivered_payloads: BTreeMap<MsgId, (Vec<GroupId>, V)>,
    ticks: u64,
    delivered_count: u64,
}

impl<V: Clone> McastMember<V> {
    /// Creates the member `me` of `topo` with deployment timing: the
    /// election timeout (600 ticks ≈ 0.6 s at a 1 ms tick) sits well above
    /// the transport's retransmission delay so message loss does not
    /// depose healthy leaders.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not an address within `topo`.
    pub fn new(me: MemberId, topo: Topology) -> Self {
        let size = topo.size_of(me.group);
        Self::with_group_config(me, topo, GroupConfig::with_timing(size, 600, 2))
    }

    /// Creates the member with an explicit consensus timing configuration
    /// (tests drive ticks directly and want fast elections).
    ///
    /// # Panics
    ///
    /// Panics if `me` is not an address within `topo` or the config size
    /// does not match the group.
    pub fn with_group_config(me: MemberId, topo: Topology, cfg: GroupConfig) -> Self {
        assert!(
            (me.group.0 as usize) < topo.group_count() && me.index < topo.size_of(me.group),
            "member {me} is not part of the topology"
        );
        assert_eq!(cfg.size, topo.size_of(me.group), "group config size mismatch");
        McastMember {
            me,
            topo,
            paxos: PaxosReplica::new(me.index, cfg),
            clock: 0,
            pending: BTreeMap::new(),
            assigned: RotatingSet::new(1 << 16),
            remote_seen: RotatingSet::new(1 << 16),
            seen_submits: BTreeMap::new(),
            seen_remote_ts: BTreeMap::new(),
            proposed_assign: BTreeMap::new(),
            proposed_remote: BTreeMap::new(),
            ts_out: BTreeMap::new(),
            delivered_payloads: BTreeMap::new(),
            ticks: 0,
            delivered_count: 0,
        }
    }

    /// This member's address.
    pub fn member_id(&self) -> MemberId {
        self.me
    }

    /// Whether this member currently leads its group's consensus.
    pub fn is_leader(&self) -> bool {
        self.paxos.is_leader()
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// The group's current logical clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Drains the underlying consensus leader's batching counters (all-zero
    /// on members that never led). Hosts poll this periodically to publish
    /// batch-size / flush-reason / pipeline-occupancy metrics.
    pub fn take_batch_stats(&mut self) -> BatchStats {
        self.paxos.take_batch_stats()
    }

    /// Number of undecided consensus slots currently in flight at this
    /// member (0 unless it leads its group).
    pub fn slots_in_flight(&self) -> usize {
        self.paxos.slots_in_flight()
    }

    /// The highest consensus ballot this member has promised. Persist it to
    /// stable storage whenever it grows: it is the only state that must
    /// survive a crash (see [`McastMember::recover`]).
    pub fn promised(&self) -> Ballot {
        self.paxos.promised()
    }

    /// True when this member has fallen behind its group's decided log by
    /// more than the retention window; slot catch-up can no longer close
    /// the gap and the hosting process should run the same state-transfer
    /// path as a restarted replica (see [`McastMember::recover`]).
    pub fn needs_state_transfer(&self) -> bool {
        self.paxos.needs_state_transfer()
    }

    /// Exports this member's state for a recovering peer of its group.
    pub fn snapshot(&self) -> MemberSnapshot<V> {
        MemberSnapshot {
            report: self.paxos.recovery_report(),
            clock: self.clock,
            pending: self.pending.clone(),
            assigned: self.assigned.clone(),
            remote_seen: self.remote_seen.clone(),
            seen_submits: self.seen_submits.clone(),
            seen_remote_ts: self.seen_remote_ts.clone(),
            ts_out: self.ts_out.clone(),
            delivered_payloads: self.delivered_payloads.clone(),
            ticks: self.ticks,
            delivered_count: self.delivered_count,
        }
    }

    /// Rebuilds member `me` from a quorum of peer [`MemberSnapshot`]s after
    /// a crash (or after falling irrecoverably far behind).
    ///
    /// Consensus state merges *all* reports (Paxos safety requires a quorum
    /// — see [`RecoveryReport`]); multicast bookkeeping installs from the
    /// single most advanced snapshot, whose frontier the rebuilt log is
    /// fast-forwarded to. `promised_floor` is the promised ballot read back
    /// from this replica's own stable storage.
    ///
    /// Returns the member, the output of applying any log entries decided
    /// above the installed frontier — the caller must process its
    /// deliveries exactly like live traffic — and the index (into
    /// `snapshots`) of the bookkeeping donor, so callers shipping extra
    /// state alongside each snapshot can install the matching pieces.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cfg.quorum()` snapshots are supplied, or the
    /// address/config don't match the topology.
    pub fn recover(
        me: MemberId,
        topo: Topology,
        cfg: GroupConfig,
        promised_floor: Ballot,
        snapshots: &[MemberSnapshot<V>],
    ) -> (Self, McastOutput<V>, usize) {
        assert!(
            (me.group.0 as usize) < topo.group_count() && me.index < topo.size_of(me.group),
            "member {me} is not part of the topology"
        );
        assert_eq!(cfg.size, topo.size_of(me.group), "group config size mismatch");
        let reports: Vec<RecoveryReport<LogEntry<V>>> =
            snapshots.iter().map(|s| s.report.clone()).collect();
        let (paxos, pout) = PaxosReplica::recover_from(me.index, cfg, promised_floor, &reports);
        let (donor_idx, donor) = snapshots
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.report.frontier)
            // detlint::allow(P002): recovery constructor with a documented panic contract (see the asserts above); recover_from has already rejected an empty quorum
            .expect("recover_from enforces a non-empty quorum");
        let mut member = McastMember {
            me,
            topo,
            paxos,
            clock: donor.clock,
            pending: donor.pending.clone(),
            assigned: donor.assigned.clone(),
            remote_seen: donor.remote_seen.clone(),
            seen_submits: donor.seen_submits.clone(),
            seen_remote_ts: donor.seen_remote_ts.clone(),
            proposed_assign: BTreeMap::new(),
            proposed_remote: BTreeMap::new(),
            ts_out: donor.ts_out.clone(),
            delivered_payloads: donor.delivered_payloads.clone(),
            ticks: donor.ticks,
            delivered_count: donor.delivered_count,
        };
        let mut out = McastOutput::new();
        for (_slot, entry) in pout.decided {
            member.apply(entry, &mut out);
        }
        out.outgoing.extend(pout.outgoing.into_iter().map(|(to_index, msg)| {
            (MemberId::new(me.group, to_index), McastWire::Paxos { from_index: me.index, msg })
        }));
        (member, out, donor_idx)
    }

    /// Atomically multicasts `payload` to `dests` from this member.
    ///
    /// The id must be globally unique (or deterministically equal across
    /// replicas of a replicated sender, in which case duplicates merge).
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty.
    pub fn submit(&mut self, mid: MsgId, mut dests: Vec<GroupId>, payload: V) -> McastOutput<V> {
        assert!(!dests.is_empty(), "a multicast needs at least one destination group");
        dests.sort_unstable();
        dests.dedup();
        let mut out = McastOutput::new();
        // Fan the submit out to every replica of every destination group
        // (including our own group, so every replica's `seen_submits` can
        // back up the leader).
        for g in dests.clone() {
            for m in self.topo.members_of(g) {
                if m != self.me {
                    out.outgoing.push((
                        m,
                        McastWire::Submit { mid, dests: dests.clone(), payload: payload.clone() },
                    ));
                }
            }
        }
        if dests.contains(&self.me.group) {
            self.note_submit(mid, dests, payload, &mut out);
        }
        out
    }

    /// Records a submit addressed to our group and proposes it if leading.
    fn note_submit(
        &mut self,
        mid: MsgId,
        dests: Vec<GroupId>,
        payload: V,
        out: &mut McastOutput<V>,
    ) {
        if self.assigned.contains(&mid) {
            return;
        }
        self.seen_submits.entry(mid).or_insert((dests, payload));
        self.maybe_propose_assign(mid, out);
    }

    fn maybe_propose_assign(&mut self, mid: MsgId, out: &mut McastOutput<V>) {
        if !self.paxos.is_leader() || self.assigned.contains(&mid) {
            return;
        }
        let ballot = self.paxos.promised();
        let stale = match self.proposed_assign.get(&mid) {
            None => true,
            Some(&(t, b)) => b != ballot && self.ticks.saturating_sub(t) >= RETRY_TICKS,
        };
        if !stale {
            return;
        }
        if let Some((dests, payload)) = self.seen_submits.get(&mid) {
            self.proposed_assign.insert(mid, (self.ticks, ballot));
            let entry = LogEntry::Assign { mid, dests: dests.clone(), payload: payload.clone() };
            let pout = self.paxos.propose(entry);
            self.absorb_paxos(pout, out);
        }
    }

    fn maybe_propose_remote(&mut self, mid: MsgId, from_group: GroupId, out: &mut McastOutput<V>) {
        if !self.paxos.is_leader() || self.remote_seen.contains(&(mid, from_group)) {
            return;
        }
        let key = (mid, from_group);
        let ballot = self.paxos.promised();
        let stale = match self.proposed_remote.get(&key) {
            None => true,
            Some(&(t, b)) => b != ballot && self.ticks.saturating_sub(t) >= RETRY_TICKS,
        };
        if !stale {
            return;
        }
        if let Some(&ts) = self.seen_remote_ts.get(&key) {
            self.proposed_remote.insert(key, (self.ticks, ballot));
            let pout = self.paxos.propose(LogEntry::Remote { mid, from_group, ts });
            self.absorb_paxos(pout, out);
        }
    }

    /// Routes a Paxos output's messages and applies its decided entries.
    fn absorb_paxos(
        &mut self,
        pout: dynastar_paxos::Output<LogEntry<V>>,
        out: &mut McastOutput<V>,
    ) {
        for (to_index, msg) in pout.outgoing {
            out.outgoing.push((
                MemberId::new(self.me.group, to_index),
                McastWire::Paxos { from_index: self.me.index, msg },
            ));
        }
        for (_slot, entry) in pout.decided {
            self.apply(entry, out);
        }
    }

    /// Applies one decided log entry (deterministic across the group).
    fn apply(&mut self, entry: LogEntry<V>, out: &mut McastOutput<V>) {
        match entry {
            LogEntry::Assign { mid, dests, payload } => {
                if !self.assigned.insert(mid) {
                    return; // duplicate Assign from leader churn
                }
                self.seen_submits.remove(&mid);
                self.proposed_assign.remove(&mid);
                self.clock += 1;
                let ts = self.clock;
                let p = self.pending.entry(mid).or_insert_with(Pending::empty);
                p.payload = Some(payload);
                p.dests = dests;
                p.local_ts = Some(ts);
                // Other destination groups need our timestamp.
                let others: Vec<GroupId> =
                    p.dests.iter().copied().filter(|&g| g != self.me.group).collect();
                for g in others {
                    self.ts_out.insert((mid, g), (ts, 0));
                }
                self.refresh_final(mid);
                self.flush_ts_out(out);
                self.try_deliver(out);
            }
            LogEntry::Remote { mid, from_group, ts } => {
                if !self.remote_seen.insert((mid, from_group)) {
                    return;
                }
                self.seen_remote_ts.remove(&(mid, from_group));
                self.proposed_remote.remove(&(mid, from_group));
                // Acknowledge so the sending group stops retransmitting.
                if self.paxos.is_leader() {
                    for m in self.topo.members_of(from_group) {
                        out.outgoing.push((
                            m,
                            McastWire::TsAck { mid, from_group, by_group: self.me.group },
                        ));
                    }
                }
                let p = self.pending.entry(mid).or_insert_with(Pending::empty);
                p.remote.insert(from_group, ts);
                self.refresh_final(mid);
                self.try_deliver(out);
            }
        }
    }

    /// Recomputes the final timestamp of `mid` if all inputs are present.
    fn refresh_final(&mut self, mid: MsgId) {
        let me = self.me.group;
        let Some(p) = self.pending.get_mut(&mid) else { return };
        if p.final_ts.is_some() {
            return;
        }
        let Some(mut final_ts) = p.local_ts else { return };
        let others = p.dests.iter().filter(|&&g| g != me);
        for g in others {
            match p.remote.get(g) {
                Some(&ts) => final_ts = final_ts.max(ts),
                None => return, // still waiting for a group
            }
        }
        p.final_ts = Some(final_ts);
        // Skeen clock rule: never assign a new local timestamp at or below
        // a known final timestamp.
        self.clock = self.clock.max(final_ts);
    }

    /// Delivers every message whose final timestamp can no longer be
    /// preceded by an undecided message.
    fn try_deliver(&mut self, out: &mut McastOutput<V>) {
        loop {
            // Smallest undecided key: a message with an assigned local
            // timestamp could still end up anywhere at or above it.
            let blocker: Option<(u64, MsgId)> = self
                .pending
                .iter()
                .filter(|(_, p)| p.final_ts.is_none())
                .filter_map(|(&mid, p)| p.local_ts.map(|ts| (ts, mid)))
                .min();
            // Smallest decided key.
            let candidate: Option<(u64, MsgId)> =
                self.pending.iter().filter_map(|(&mid, p)| p.final_ts.map(|ts| (ts, mid))).min();
            let Some((fts, mid)) = candidate else { return };
            if let Some(blk) = blocker {
                if blk < (fts, mid) {
                    return;
                }
            }
            let Some(p) = self.pending.remove(&mid) else {
                // The candidate came from iterating `pending` above, so a
                // miss can only mean a local bookkeeping bug; stop
                // delivering rather than crash the replica.
                return;
            };
            let Some(payload) = p.payload else {
                // A final timestamp requires a local timestamp, which is
                // only assigned alongside the payload; a finalized entry
                // without one is a local logic bug, not wire input. Skip
                // it rather than crash — later messages stay deliverable.
                continue;
            };
            self.delivered_count += 1;
            // Keep the payload around while other groups still need our
            // timestamp retransmitted.
            if self.ts_out.keys().any(|&(m, _)| m == mid) {
                self.delivered_payloads.insert(mid, (p.dests.clone(), payload.clone()));
            }
            out.delivered.push(Delivery { mid, final_ts: fts, dests: p.dests, payload });
        }
    }

    /// Sends (or re-sends) our group's timestamps to groups that have not
    /// acknowledged them. Only the leader transmits, to bound traffic.
    fn flush_ts_out(&mut self, out: &mut McastOutput<V>) {
        if !self.paxos.is_leader() {
            return;
        }
        let ticks = self.ticks;
        let mut sends: Vec<(MsgId, GroupId, u64)> = Vec::new();
        for (&(mid, to_group), &mut (ts, ref mut last)) in self.ts_out.iter_mut() {
            if *last == 0 || ticks.saturating_sub(*last) >= RETRY_TICKS {
                *last = ticks.max(1);
                sends.push((mid, to_group, ts));
            }
        }
        for (mid, to_group, ts) in sends {
            // Payload travels with the timestamp so the destination can
            // order the message even if it never saw the Submit. After
            // local delivery the pending entry is gone; fall back to a
            // payload-free... — never needed: ts_out entries for delivered
            // messages keep their payload in `delivered_payloads` below.
            let (dests, payload) = match self.pending.get(&mid) {
                Some(p) => (p.dests.clone(), p.payload.clone()),
                None => match self.delivered_payloads.get(&mid) {
                    Some((d, v)) => (d.clone(), Some(v.clone())),
                    None => continue,
                },
            };
            let Some(payload) = payload else { continue };
            for m in self.topo.members_of(to_group) {
                out.outgoing.push((
                    m,
                    McastWire::GroupTs {
                        mid,
                        from_group: self.me.group,
                        ts,
                        dests: dests.clone(),
                        payload: payload.clone(),
                    },
                ));
            }
        }
    }

    /// Feeds one wire message into the member.
    pub fn on_message(&mut self, wire: McastWire<V>) -> McastOutput<V> {
        let mut out = McastOutput::new();
        match wire {
            McastWire::Submit { mid, dests, payload } => {
                if dests.contains(&self.me.group) {
                    self.note_submit(mid, dests, payload, &mut out);
                }
            }
            McastWire::GroupTs { mid, from_group, ts, dests, payload } => {
                if !dests.contains(&self.me.group) {
                    return out;
                }
                // The timestamp doubles as a submit (see wire docs).
                self.note_submit(mid, dests, payload, &mut out);
                if self.remote_seen.contains(&(mid, from_group)) {
                    // Already ordered: the ack may have been lost, resend it.
                    if self.paxos.is_leader() {
                        for m in self.topo.members_of(from_group) {
                            out.outgoing.push((
                                m,
                                McastWire::TsAck { mid, from_group, by_group: self.me.group },
                            ));
                        }
                    }
                } else {
                    self.seen_remote_ts.insert((mid, from_group), ts);
                    self.maybe_propose_remote(mid, from_group, &mut out);
                }
            }
            McastWire::TsAck { mid, from_group, by_group } => {
                if from_group == self.me.group {
                    self.ts_out.remove(&(mid, by_group));
                    if !self.ts_out.keys().any(|&(m, _)| m == mid) {
                        self.delivered_payloads.remove(&mid);
                    }
                }
            }
            McastWire::Paxos { from_index, msg } => {
                let pout = self.paxos.on_message(from_index, msg);
                self.absorb_paxos(pout, &mut out);
            }
        }
        out
    }

    /// Advances time: drives the consensus clock and retransmissions.
    pub fn tick(&mut self) -> McastOutput<V> {
        self.ticks += 1;
        let mut out = McastOutput::new();
        let pout = self.paxos.tick();
        self.absorb_paxos(pout, &mut out);
        if self.paxos.is_leader() {
            // A replica that just became leader adopts outstanding work.
            let submit_mids: Vec<MsgId> = self.seen_submits.keys().copied().collect();
            for mid in submit_mids {
                self.maybe_propose_assign(mid, &mut out);
            }
            let remote_keys: Vec<(MsgId, GroupId)> = self.seen_remote_ts.keys().copied().collect();
            for (mid, g) in remote_keys {
                self.maybe_propose_remote(mid, g, &mut out);
            }
            self.flush_ts_out(&mut out);
        }
        out
    }
}
