//! # dynastar-amcast
//!
//! A genuine atomic multicast built from per-group Multi-Paxos instances,
//! in the style of BaseCast/FastCast (Coelho, Schiper, Pedone — DSN'17),
//! which the DynaStar paper uses as its ordering substrate.
//!
//! ## Protocol
//!
//! Processes are organised into disjoint *groups*, each running one
//! [`dynastar_paxos`] instance. To atomically multicast a message `m` to a
//! set of destination groups γ:
//!
//! 1. The sender submits `m` to (the replicas of) every group in γ.
//! 2. Each group `g ∈ γ` orders an `Assign(m)` entry in its Paxos log.
//!    Replaying the log, every replica of `g` deterministically assigns the
//!    group's logical timestamp `ts_g(m)` (a per-group Lamport clock).
//! 3. Groups in γ exchange their timestamps; each received timestamp is
//!    itself ordered in the receiving group's log (a `Remote` entry), so all
//!    replicas of a group observe the identical interleaving.
//! 4. The final timestamp is `max` over γ. Message delivery follows the
//!    total order of `(final_ts, msg id)`; a message is delivered once no
//!    undecided message could obtain a smaller final timestamp.
//!
//! Only the sender and the destination groups exchange messages — the
//! multicast is *genuine* — and a single-group multicast costs exactly one
//! consensus instance (the atomic broadcast fast path).
//!
//! The implementation is sans-io, mirroring `dynastar-paxos`:
//! [`McastMember`] consumes wire messages and ticks, and produces outgoing
//! wire messages plus ordered deliveries.
//!
//! # Example
//!
//! ```
//! use dynastar_amcast::{GroupId, McastMember, MemberId, MsgId, Topology};
//!
//! // Two groups of one replica each.
//! let topo = Topology::new(vec![1, 1]);
//! let mut m0: McastMember<&'static str> = McastMember::new(MemberId::new(GroupId(0), 0), topo.clone());
//! let mut m1: McastMember<&'static str> = McastMember::new(MemberId::new(GroupId(1), 0), topo);
//!
//! // Multicast to both groups, shuttling wire messages by hand.
//! let mid = MsgId::new(7, 0);
//! let mut queue: Vec<(MemberId, dynastar_amcast::McastWire<&'static str>)> =
//!     m0.submit(mid, vec![GroupId(0), GroupId(1)], "hello").outgoing;
//! let mut delivered = Vec::new();
//! while let Some((to, wire)) = queue.pop() {
//!     let member = if to.group == GroupId(0) { &mut m0 } else { &mut m1 };
//!     let out = member.on_message(wire);
//!     queue.extend(out.outgoing);
//!     delivered.extend(out.delivered.into_iter().map(|d| (to, d.payload)));
//! }
//! assert!(delivered.contains(&(MemberId::new(GroupId(0), 0), "hello")));
//! assert!(delivered.contains(&(MemberId::new(GroupId(1), 0), "hello")));
//! ```

#![forbid(unsafe_code)]
// Protocol crate: no unwrap on delivery paths. Tests assert freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod member;
mod types;

pub use member::{McastMember, McastOutput, MemberSnapshot};
pub use types::{Delivery, GroupId, LogEntry, McastWire, MemberId, MsgId, Topology};
