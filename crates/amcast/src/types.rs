//! Identifiers, topology and wire messages of the atomic multicast layer.

use std::fmt;

use dynastar_paxos::PaxosMsg;
use serde::{Deserialize, Serialize};

/// Identifier of a replica group (a partition, or the oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Address of one replica: a group and an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemberId {
    /// The group the replica belongs to.
    pub group: GroupId,
    /// The replica's index within its group (`0..group size`).
    pub index: usize,
}

impl MemberId {
    /// Creates a member address.
    pub fn new(group: GroupId, index: usize) -> Self {
        MemberId { group, index }
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.group, self.index)
    }
}

/// Globally unique identifier of a multicast message.
///
/// Ids are structured rather than random so that replicated senders can
/// *deterministically* derive the same id for the same logical message:
/// every replica of the oracle deriving the id of a follow-up multicast
/// from the triggering command's id produces identical ids, and destination
/// leaders deduplicate the copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// The originating process (e.g. a client id).
    pub origin: u64,
    /// Per-origin sequence number.
    pub seq: u32,
    /// Derivation tag: 0 for the original message, `n` for the n-th message
    /// deterministically derived from it.
    pub tag: u32,
}

impl MsgId {
    /// Id of the `seq`-th original message of `origin`.
    pub fn new(origin: u64, seq: u32) -> Self {
        MsgId { origin, seq, tag: 0 }
    }

    /// Id of the `tag`-th message derived from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is zero (reserved for original messages).
    pub fn derived(self, tag: u32) -> Self {
        assert!(tag != 0, "derivation tag 0 is reserved for original messages");
        MsgId { origin: self.origin, seq: self.seq, tag }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}.{}", self.origin, self.seq, self.tag)
    }
}

/// Static description of all groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sizes: Vec<usize>,
}

impl Topology {
    /// Creates a topology from per-group replica counts.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups or any group is empty.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(!sizes.is_empty(), "topology needs at least one group");
        assert!(sizes.iter().all(|&s| s > 0), "every group needs at least one replica");
        Topology { sizes }
    }

    /// Creates a topology of `groups` groups with `replicas` replicas each.
    pub fn uniform(groups: usize, replicas: usize) -> Self {
        Topology::new(vec![replicas; groups])
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.sizes.len()
    }

    /// Number of replicas in `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` does not exist.
    pub fn size_of(&self, group: GroupId) -> usize {
        self.sizes[group.0 as usize]
    }

    /// All group ids.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.sizes.len()).map(|i| GroupId(i as u32))
    }

    /// All member addresses of `group`.
    pub fn members_of(&self, group: GroupId) -> impl Iterator<Item = MemberId> + '_ {
        (0..self.size_of(group)).map(move |i| MemberId::new(group, i))
    }
}

/// An entry in a group's Paxos log.
///
/// Replaying the log deterministically reconstructs the group's multicast
/// state (logical clock, per-message timestamps), so every replica of the
/// group agrees on timestamps without extra coordination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEntry<V> {
    /// Order message `mid` in this group and assign it the next local
    /// timestamp.
    Assign {
        /// The message id.
        mid: MsgId,
        /// All destination groups of the message (sorted).
        dests: Vec<GroupId>,
        /// The application payload.
        payload: V,
    },
    /// Record that destination group `from_group` assigned `ts` to `mid`.
    Remote {
        /// The message id.
        mid: MsgId,
        /// The group reporting its timestamp.
        from_group: GroupId,
        /// The reported local timestamp.
        ts: u64,
    },
}

/// Wire messages of the multicast layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum McastWire<V> {
    /// A sender (client or replica) submits `mid` for ordering.
    Submit {
        /// The message id (deduplicated at destination leaders).
        mid: MsgId,
        /// Destination groups.
        dests: Vec<GroupId>,
        /// Application payload.
        payload: V,
    },
    /// A destination group's locally assigned timestamp for `mid`.
    ///
    /// Carries the destinations and payload too, so a destination group
    /// that never saw the original `Submit` (all copies lost) can still
    /// order the message — without this, one lost submit could block the
    /// whole multicast.
    GroupTs {
        /// The message id.
        mid: MsgId,
        /// The group that assigned `ts`.
        from_group: GroupId,
        /// The assigned local timestamp.
        ts: u64,
        /// Destination groups of the message.
        dests: Vec<GroupId>,
        /// Application payload.
        payload: V,
    },
    /// Acknowledgement that `from_group`'s timestamp for `mid` was ordered
    /// by the acknowledging group (stops retransmission).
    TsAck {
        /// The message id.
        mid: MsgId,
        /// The group whose timestamp is acknowledged.
        from_group: GroupId,
        /// The acknowledging group.
        by_group: GroupId,
    },
    /// Intra-group consensus traffic.
    Paxos {
        /// Index (within the group) of the sending replica.
        from_index: usize,
        /// The consensus message.
        msg: PaxosMsg<LogEntry<V>>,
    },
}

/// A message delivered by the multicast layer, in final-timestamp order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery<V> {
    /// The message id.
    pub mid: MsgId,
    /// The final (global) timestamp that positioned the message.
    pub final_ts: u64,
    /// All destination groups.
    pub dests: Vec<GroupId>,
    /// The application payload.
    pub payload: V,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_ids_are_ordered_and_derivable() {
        let a = MsgId::new(1, 0);
        let b = MsgId::new(1, 1);
        assert!(a < b);
        let d = a.derived(2);
        assert_eq!(d.origin, 1);
        assert_eq!(d.tag, 2);
        assert_ne!(a, d);
        assert_eq!(a.to_string(), "m1.0.0");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn derived_rejects_tag_zero() {
        let _ = MsgId::new(1, 0).derived(0);
    }

    #[test]
    fn topology_enumerates_members() {
        let t = Topology::new(vec![2, 3]);
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.size_of(GroupId(1)), 3);
        let members: Vec<MemberId> = t.members_of(GroupId(1)).collect();
        assert_eq!(members.len(), 3);
        assert_eq!(members[2], MemberId::new(GroupId(1), 2));
        assert_eq!(t.groups().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn topology_rejects_empty_group() {
        let _ = Topology::new(vec![1, 0]);
    }

    #[test]
    fn uniform_topology() {
        let t = Topology::uniform(4, 3);
        assert_eq!(t.group_count(), 4);
        assert!(t.groups().all(|g| t.size_of(g) == 3));
    }
}
