//! Property-based safety tests for Multi-Paxos.
//!
//! The key invariant is *agreement*: no two replicas ever deliver different
//! commands for the same slot, regardless of message reordering, message
//! loss and minority crashes. We drive a group through randomized schedules
//! and check the delivered logs pairwise.

use std::collections::VecDeque;

use dynastar_paxos::{GroupConfig, PaxosMsg, PaxosReplica, Slot};
use proptest::prelude::*;

/// One scheduled action in a randomized run.
#[derive(Debug, Clone)]
enum Action {
    /// Propose `value` at replica `at % n`.
    Propose { at: usize, value: u64 },
    /// Deliver the `k % queue.len()`-th queued message (out of order).
    Deliver { k: usize },
    /// Drop the `k % queue.len()`-th queued message.
    Drop { k: usize },
    /// Tick every replica once.
    Tick,
    /// Crash replica `at % n` (skipped if it would exceed a minority).
    Crash { at: usize },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0usize..16, 0u64..1000).prop_map(|(at, value)| Action::Propose { at, value }),
        8 => (0usize..64).prop_map(|k| Action::Deliver { k }),
        1 => (0usize..64).prop_map(|k| Action::Drop { k }),
        3 => Just(Action::Tick),
        1 => (0usize..16).prop_map(|at| Action::Crash { at }),
    ]
}

struct Harness {
    replicas: Vec<PaxosReplica<u64>>,
    queue: VecDeque<(usize, usize, PaxosMsg<u64>)>,
    delivered: Vec<Vec<(Slot, u64)>>,
    down: Vec<bool>,
    crashed: usize,
}

impl Harness {
    fn new(n: usize) -> Self {
        let cfg = GroupConfig::new(n);
        Harness {
            replicas: (0..n).map(|i| PaxosReplica::new(i, cfg.clone())).collect(),
            queue: VecDeque::new(),
            delivered: vec![Vec::new(); n],
            down: vec![false; n],
            crashed: 0,
        }
    }

    fn absorb(&mut self, from: usize, out: dynastar_paxos::Output<u64>) {
        for (to, msg) in out.outgoing {
            self.queue.push_back((from, to, msg));
        }
        self.delivered[from].extend(out.decided);
    }

    fn apply(&mut self, a: &Action) {
        let n = self.replicas.len();
        match *a {
            Action::Propose { at, value } => {
                let at = at % n;
                if !self.down[at] {
                    let out = self.replicas[at].propose(value);
                    self.absorb(at, out);
                }
            }
            Action::Deliver { k } => {
                if self.queue.is_empty() {
                    return;
                }
                let k = k % self.queue.len();
                let (from, to, msg) = self.queue.remove(k).unwrap();
                if self.down[to] || self.down[from] {
                    return;
                }
                let out = self.replicas[to].on_message(from, msg);
                self.absorb(to, out);
            }
            Action::Drop { k } => {
                if !self.queue.is_empty() {
                    let k = k % self.queue.len();
                    self.queue.remove(k);
                }
            }
            Action::Tick => {
                for i in 0..n {
                    if !self.down[i] {
                        let out = self.replicas[i].tick();
                        self.absorb(i, out);
                    }
                }
            }
            Action::Crash { at } => {
                let at = at % n;
                // Keep a majority alive so liveness checks stay meaningful.
                if !self.down[at] && (self.crashed + 1) * 2 < n {
                    self.down[at] = true;
                    self.crashed += 1;
                }
            }
        }
    }

    /// Delivers every remaining message and runs ticks until quiet, so the
    /// group converges before final checks.
    fn settle(&mut self) {
        for _ in 0..200 {
            while let Some((from, to, msg)) = self.queue.pop_front() {
                if self.down[to] || self.down[from] {
                    continue;
                }
                let out = self.replicas[to].on_message(from, msg);
                self.absorb(to, out);
            }
            for i in 0..self.replicas.len() {
                if !self.down[i] {
                    let out = self.replicas[i].tick();
                    self.absorb(i, out);
                }
            }
            if self.queue.is_empty() {
                break;
            }
        }
    }

    /// Agreement: for every slot, all replicas that delivered it delivered
    /// the same value.
    fn check_agreement(&self) {
        for i in 0..self.replicas.len() {
            for j in (i + 1)..self.replicas.len() {
                for (si, vi) in &self.delivered[i] {
                    for (sj, vj) in &self.delivered[j] {
                        if si == sj {
                            assert_eq!(
                                vi, vj,
                                "replicas {i} and {j} disagree at slot {si}: {vi} vs {vj}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Each replica's delivered slots are strictly increasing (in-order
    /// delivery, no duplicates).
    fn check_in_order(&self) {
        for (i, log) in self.delivered.iter().enumerate() {
            for w in log.windows(2) {
                assert!(w[0].0 < w[1].0, "replica {i} delivered out of order: {w:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement and in-order delivery hold for a 3-replica group under
    /// arbitrary reordering, loss and minority crashes.
    #[test]
    fn paxos_agreement_n3(actions in prop::collection::vec(action_strategy(), 1..200)) {
        let mut h = Harness::new(3);
        for a in &actions {
            h.apply(a);
        }
        h.settle();
        h.check_agreement();
        h.check_in_order();
    }

    /// Same invariants for a 5-replica group.
    #[test]
    fn paxos_agreement_n5(actions in prop::collection::vec(action_strategy(), 1..200)) {
        let mut h = Harness::new(5);
        for a in &actions {
            h.apply(a);
        }
        h.settle();
        h.check_agreement();
        h.check_in_order();
    }

    /// Liveness under clean conditions: with no drops or crashes, every
    /// proposal at the initial leader is eventually delivered everywhere.
    #[test]
    fn paxos_liveness_clean(values in prop::collection::vec(0u64..1000, 1..30)) {
        let mut h = Harness::new(3);
        for &v in &values {
            let out = h.replicas[0].propose(v);
            h.absorb(0, out);
        }
        h.settle();
        for (i, log) in h.delivered.iter().enumerate() {
            let got: Vec<u64> = log.iter().map(|&(_, v)| v).collect();
            prop_assert_eq!(&got, &values, "replica {} log mismatch", i);
        }
    }
}
