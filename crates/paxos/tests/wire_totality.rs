//! Wire-totality coverage: every `PaxosMsg` and `Entry` variant is
//! exercised by a real protocol run, not just declared. detlint's T003
//! rule holds this file (and `properties.rs`) accountable — a new wire
//! variant without a test here fails the lint.

use std::collections::BTreeSet;

use dynastar_paxos::{BatchConfig, Entry, GroupConfig, Output, PaxosMsg, PaxosReplica, Slot};

/// The variant name of a wire message, via an exhaustive match — adding
/// a `PaxosMsg` variant without extending this test is a compile error.
fn tag(msg: &PaxosMsg<u64>) -> &'static str {
    match msg {
        PaxosMsg::Prepare { .. } => "Prepare",
        PaxosMsg::Promise { .. } => "Promise",
        PaxosMsg::Accept { .. } => "Accept",
        PaxosMsg::Accepted { .. } => "Accepted",
        PaxosMsg::Decide { .. } => "Decide",
        PaxosMsg::Heartbeat { .. } => "Heartbeat",
        PaxosMsg::CatchUpRequest { .. } => "CatchUpRequest",
        PaxosMsg::Forward { .. } => "Forward",
        PaxosMsg::Nack { .. } => "Nack",
    }
}

struct Net {
    replicas: Vec<PaxosReplica<u64>>,
    queue: Vec<(usize, usize, PaxosMsg<u64>)>,
    seen: BTreeSet<&'static str>,
    decided: Vec<Vec<(Slot, u64)>>,
    /// A partitioned replica: messages to or from it are dropped.
    down: Option<usize>,
}

impl Net {
    fn new(cfg: GroupConfig) -> Net {
        let n = cfg.size;
        Net {
            replicas: (0..n).map(|i| PaxosReplica::new(i, cfg.clone())).collect(),
            queue: Vec::new(),
            seen: BTreeSet::new(),
            decided: vec![Vec::new(); n],
            down: None,
        }
    }

    fn absorb(&mut self, at: usize, out: Output<u64>) {
        for (to, msg) in out.outgoing {
            self.seen.insert(tag(&msg));
            self.queue.push((at, to, msg));
        }
        self.decided[at].extend(out.decided);
    }

    /// Delivers every queued message (and messages they generate) until
    /// the network is quiet.
    fn settle(&mut self) {
        for _ in 0..10_000 {
            if self.queue.is_empty() {
                return;
            }
            let (from, to, msg) = self.queue.remove(0);
            if self.down == Some(from) || self.down == Some(to) {
                continue;
            }
            let out = self.replicas[to].on_message(from, msg);
            self.absorb(to, out);
        }
        panic!("network did not settle");
    }

    fn tick_all(&mut self) {
        for i in 0..self.replicas.len() {
            let out = self.replicas[i].tick();
            self.absorb(i, out);
        }
    }

    fn propose(&mut self, at: usize, value: u64) {
        let out = self.replicas[at].propose(value);
        self.absorb(at, out);
    }
}

/// One healthy run — proposals at leader and follower, an election, a
/// partitioned laggard catching up — puts every wire variant on the
/// wire and keeps the replicas consistent.
#[test]
fn every_wire_variant_appears_in_a_real_run() {
    let mut net = Net::new(GroupConfig::new(3));

    // Replica 0 starts as leader: a proposal there drives the phase-2
    // path (Accept / Accepted / Decide).
    net.propose(0, 10);
    net.settle();

    // A proposal at a follower is forwarded to the leader.
    net.propose(1, 20);
    net.settle();

    // Leader heartbeats on its tick cadence.
    net.tick_all();
    net.tick_all();
    net.settle();

    // A stale Prepare (ballot below the group's promise) draws a Nack.
    let stale = net.replicas[2].on_message(1, PaxosMsg::Prepare { ballot: Default::default() });
    assert!(
        stale.outgoing.iter().any(|(_, m)| matches!(m, PaxosMsg::Nack { .. })),
        "stale Prepare must be Nacked"
    );
    net.absorb(2, stale);
    net.settle();

    // Partition replica 0 and silence it long enough for a follower to
    // run an election: Prepare / Promise traffic, then a new leader's
    // heartbeats and a decision replica 0 never hears about.
    net.down = Some(0);
    for _ in 0..40 {
        for i in 1..3 {
            let out = net.replicas[i].tick();
            net.absorb(i, out);
        }
        net.settle();
    }
    net.propose(1, 30);
    net.settle();

    // Heal the partition: behind on decisions, the first heartbeat
    // replica 0 hears triggers a CatchUpRequest and Decide
    // retransmissions that bring its log level with the group.
    net.down = None;
    for _ in 0..4 {
        net.tick_all();
        net.settle();
    }

    for want in [
        "Prepare",
        "Promise",
        "Accept",
        "Accepted",
        "Decide",
        "Heartbeat",
        "Forward",
        "Nack",
        "CatchUpRequest",
    ] {
        assert!(
            net.seen.contains(want),
            "variant {want} never crossed the wire; saw {:?}",
            net.seen
        );
    }

    // All three logs agree on the decided prefix.
    let shortest = net.decided.iter().map(Vec::len).min().unwrap();
    assert!(shortest >= 3, "all commands should decide everywhere, got {:?}", net.decided);
    for r in &net.decided {
        assert_eq!(&r[..shortest], &net.decided[0][..shortest], "divergent decided sequences");
    }
}

/// Batching puts `Entry::Batch` on the wire; the decode path flattens
/// it back into per-command deliveries in batch order.
#[test]
fn batched_proposals_travel_as_one_entry_batch() {
    let mut cfg = GroupConfig::new(3);
    cfg.batch = BatchConfig { max_batch: 3, max_batch_delay_ticks: 8, window: 1 };
    let mut net = Net::new(cfg);

    // Fill one batch exactly; with window = 1 it flushes as a single
    // Accept carrying an Entry::Batch.
    for v in [1, 2, 3] {
        net.propose(0, v);
    }
    let batch_on_wire = net.queue.iter().any(|(_, _, m)| {
        matches!(m, PaxosMsg::Accept { value: Entry::Batch(cmds), .. } if cmds.len() == 3)
    });
    assert!(batch_on_wire, "a full buffer must flush as Entry::Batch");
    net.settle();

    for r in 0..3 {
        let values: Vec<u64> = net.decided[r].iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 3], "replica {r} must deliver the batch in order");
    }
}

/// `Entry` arithmetic: a batch counts its commands, a no-op gap filler
/// counts zero and is invisible to the application.
#[test]
fn entry_variants_deliver_expected_command_counts() {
    assert_eq!(Entry::Cmd(7u64).command_count(), 1);
    assert_eq!(Entry::Batch(vec![1u64, 2, 3]).command_count(), 3);
    assert_eq!(Entry::<u64>::Noop.command_count(), 0);

    // Clone/eq round-trips keep batch order.
    let batch = Entry::Batch(vec![4u64, 5]);
    assert_eq!(batch.clone(), batch);
    assert_ne!(Entry::<u64>::Noop, Entry::Cmd(0));
}
