//! # dynastar-paxos
//!
//! A from-scratch Multi-Paxos implementation, written *sans-io*: the
//! [`PaxosReplica`] state machine consumes messages and clock ticks and
//! produces outgoing messages and decided log entries, without knowing
//! anything about transports or threads. The DynaStar stack drives replicas
//! from [`dynastar_runtime`] actors; tests drive them directly.
//!
//! Each replica group in DynaStar (the oracle and every partition) runs one
//! instance of this protocol, mirroring the paper's libpaxos3-based groups:
//! a stable leader orders commands in a slot-indexed log, acceptors
//! guarantee that a value chosen in a slot is never changed, and learners
//! deliver the log in slot order.
//!
//! # Example
//!
//! ```
//! use dynastar_paxos::{GroupConfig, PaxosMsg, PaxosReplica};
//!
//! // A three-replica group; replica 0 is the initial leader.
//! let cfg = GroupConfig::new(3);
//! let mut replicas: Vec<PaxosReplica<String>> =
//!     (0..3).map(|i| PaxosReplica::new(i, cfg.clone())).collect();
//!
//! // Propose a command at the leader and shuttle messages until quiescent.
//! let mut inflight: Vec<(usize, usize, PaxosMsg<String>)> = Vec::new();
//! let out = replicas[0].propose("cmd".to_string());
//! inflight.extend(out.outgoing.into_iter().map(|(to, m)| (0, to, m)));
//! let mut delivered = Vec::new();
//! while let Some((from, to, msg)) = inflight.pop() {
//!     let out = replicas[to].on_message(from, msg);
//!     inflight.extend(out.outgoing.into_iter().map(|(t, m)| (to, t, m)));
//!     delivered.extend(out.decided.into_iter().map(|(_, v)| v));
//! }
//! assert!(delivered.contains(&"cmd".to_string()));
//! ```

#![forbid(unsafe_code)]
// Protocol crate: no unwrap on delivery paths. Tests assert freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod replica;
mod types;

pub use replica::{BatchStats, Output, PaxosReplica, RecoveryReport};
pub use types::{Ballot, BatchConfig, Entry, GroupConfig, PaxosMsg, Slot};
