//! Core Paxos vocabulary: ballots, slots, group configuration, messages.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A ballot number: a `(round, replica)` pair, totally ordered
/// lexicographically so that every replica can generate ballots that are
/// distinct from every other replica's.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ballot {
    /// Monotone round counter.
    pub round: u64,
    /// Index (within the group) of the replica that owns the ballot.
    pub owner: usize,
}

impl Ballot {
    /// The ballot the group implicitly starts in: round 0, owned by
    /// replica 0, which therefore begins as leader without running phase 1.
    pub const INITIAL: Ballot = Ballot { round: 0, owner: 0 };

    /// The smallest ballot owned by `owner` that is strictly greater than
    /// `self`.
    pub fn next_for(self, owner: usize) -> Ballot {
        if owner > self.owner {
            Ballot { round: self.round, owner }
        } else {
            Ballot { round: self.round + 1, owner }
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.owner)
    }
}

/// A position in the replicated log. Slots start at 0 and are dense.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Slot(pub u64);

impl Slot {
    /// The slot after this one.
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Batching and pipelining knobs for a group's leader.
///
/// The leader accumulates proposals into a buffer and flushes them into a
/// single log slot as an [`Entry::Batch`], amortizing one consensus
/// instance over many commands. A flush happens when the buffer reaches
/// [`BatchConfig::max_batch`] commands (a *full* flush) or when the oldest
/// buffered command has waited [`BatchConfig::max_batch_delay_ticks`]
/// clock ticks (a *delay* flush). Independently, the number of undecided
/// slots the leader keeps in flight is capped by [`BatchConfig::window`]:
/// while the window is full, new proposals wait in the buffer (and so
/// batch up under load).
///
/// The default — `max_batch = 1`, no delay, unbounded window — reproduces
/// the unbatched protocol exactly: every proposal becomes its own
/// [`Entry::Cmd`] slot immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum commands per batch (per log slot). Must be ≥ 1; 1 disables
    /// batching.
    pub max_batch: usize,
    /// Ticks a partial batch may wait for more commands before it is
    /// flushed anyway. 0 flushes on the next opportunity (no added delay).
    pub max_batch_delay_ticks: u32,
    /// Maximum undecided slots the leader keeps in flight. 0 = unbounded
    /// (the historical behaviour).
    pub window: usize,
}

impl BatchConfig {
    /// No batching, no pipelining bound — the historical behaviour.
    pub const UNBATCHED: BatchConfig =
        BatchConfig { max_batch: 1, max_batch_delay_ticks: 0, window: 0 };

    /// Whether `slots_in_flight` leaves room to start another instance.
    pub fn window_open(&self, slots_in_flight: usize) -> bool {
        self.window == 0 || slots_in_flight < self.window
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::UNBATCHED
    }
}

/// Static configuration of one Paxos group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Number of replicas in the group.
    pub size: usize,
    /// Ticks of leader silence before a follower starts an election.
    /// Follower `i` waits `election_timeout_ticks * (1 + i)` ticks, which
    /// staggers elections and avoids duelling leaders.
    pub election_timeout_ticks: u32,
    /// Ticks between leader heartbeats.
    pub heartbeat_interval_ticks: u32,
    /// Leader-side batching and pipelining knobs.
    pub batch: BatchConfig,
}

impl GroupConfig {
    /// A group of `size` replicas with default timing (heartbeat every 2
    /// ticks, election after 10 quiet ticks). This fast timing suits
    /// tests driving replicas tick-by-tick; deployments over lossy
    /// transports should use [`GroupConfig::with_timing`] with an election
    /// timeout well above the transport's retransmission delay, or
    /// leadership thrashes whenever a heartbeat is delayed.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        Self::with_timing(size, 10, 2)
    }

    /// A group of `size` replicas with explicit timing (in ticks).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `election_timeout_ticks` is zero.
    pub fn with_timing(
        size: usize,
        election_timeout_ticks: u32,
        heartbeat_interval_ticks: u32,
    ) -> Self {
        assert!(size > 0, "a Paxos group needs at least one replica");
        assert!(election_timeout_ticks > 0, "election timeout must be positive");
        GroupConfig {
            size,
            election_timeout_ticks,
            heartbeat_interval_ticks,
            batch: BatchConfig::UNBATCHED,
        }
    }

    /// Builder-style setter for the batching/pipelining knobs.
    ///
    /// # Panics
    ///
    /// Panics if `batch.max_batch` is zero.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        assert!(batch.max_batch > 0, "max_batch must be at least 1");
        self.batch = batch;
        self
    }

    /// The quorum size: a strict majority of the group.
    pub fn quorum(&self) -> usize {
        self.size / 2 + 1
    }
}

/// A log entry as stored/transferred by the protocol. Gap-filling no-ops
/// are internal to Paxos and never delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Entry<V> {
    /// An application command.
    Cmd(V),
    /// Several application commands ordered together in one consensus
    /// instance. Learners deliver the commands in vector order, so a batch
    /// is equivalent to the same commands occupying consecutive slots.
    Batch(Vec<V>),
    /// A no-op used by a new leader to fill holes in the log.
    Noop,
}

impl<V> Entry<V> {
    /// Number of application commands this entry delivers.
    pub fn command_count(&self) -> usize {
        match self {
            Entry::Cmd(_) => 1,
            Entry::Batch(vs) => vs.len(),
            Entry::Noop => 0,
        }
    }
}

/// The wire protocol between replicas of one group.
///
/// `from` fields are implicit: transports know the sender. All indices are
/// replica indices within the group (`0..size`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PaxosMsg<V> {
    /// Phase 1a: a candidate asks acceptors to promise ballot `ballot`.
    Prepare {
        /// The ballot being prepared.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor promises `ballot` and reports every value it
    /// has accepted in an undecided slot, plus how much of the log it knows
    /// to be decided.
    Promise {
        /// The promised ballot.
        ballot: Ballot,
        /// `(slot, ballot the value was accepted at, value)` for undecided slots.
        accepted: Vec<(Slot, Ballot, Entry<V>)>,
        /// First slot the acceptor does not know to be decided.
        decided_up_to: Slot,
    },
    /// Phase 2a: the leader asks acceptors to accept `value` in `slot`.
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// The slot being filled.
        slot: Slot,
        /// The proposed entry.
        value: Entry<V>,
    },
    /// Phase 2b: an acceptor reports that it accepted `slot` at `ballot`.
    Accepted {
        /// The ballot at which the acceptor accepted.
        ballot: Ballot,
        /// The accepted slot.
        slot: Slot,
    },
    /// Commit notification: `slot` was chosen with `value`.
    Decide {
        /// The decided slot.
        slot: Slot,
        /// The chosen entry.
        value: Entry<V>,
    },
    /// Leader liveness beacon; also advertises the decided log frontier so
    /// lagging replicas can ask for retransmission.
    Heartbeat {
        /// The leader's ballot.
        ballot: Ballot,
        /// First slot the leader has not decided.
        decided_up_to: Slot,
    },
    /// Request retransmission of decided slots in `[from_slot, to_slot)`.
    CatchUpRequest {
        /// First slot requested.
        from_slot: Slot,
        /// One past the last slot requested.
        to_slot: Slot,
    },
    /// A non-leader replica forwarding a client proposal to the leader.
    Forward {
        /// The forwarded command.
        value: V,
    },
    /// A ballot-too-low rejection, informing the sender of the higher ballot.
    Nack {
        /// The higher ballot the receiver has promised.
        ballot: Ballot,
    },
}
