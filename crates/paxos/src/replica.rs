//! The Multi-Paxos replica state machine.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::types::{Ballot, Entry, GroupConfig, PaxosMsg, Slot};

/// Ballot marker for values that are known chosen. It compares greater than
/// any real ballot, so a new leader's value selection always keeps chosen
/// values — required for safety when acceptors report decided slots.
const DECIDED_BALLOT: Ballot = Ballot { round: u64::MAX, owner: usize::MAX };

/// Batch cap for catch-up retransmissions.
const CATCH_UP_BATCH: u64 = 512;

/// Delivered log entries retained for catch-up retransmission. Entries
/// older than this behind the delivery frontier are pruned (a real system
/// would snapshot; a replica lagging further than this window cannot be
/// caught up and would need a state transfer).
const LOG_RETENTION: u64 = 1024;

/// The effects of feeding one input to a [`PaxosReplica`].
#[derive(Debug, Clone)]
pub struct Output<V> {
    /// Messages to send, as `(destination replica index, message)` pairs.
    pub outgoing: Vec<(usize, PaxosMsg<V>)>,
    /// Commands newly decided *and* in slot order, ready for the
    /// application. No-op gap fillers are filtered out; a decided
    /// [`Entry::Batch`] is flattened into one element per command (all
    /// carrying the batch's slot, in batch order).
    pub decided: Vec<(Slot, V)>,
}

impl<V> Output<V> {
    fn new() -> Self {
        Output { outgoing: Vec::new(), decided: Vec::new() }
    }

    /// True when nothing needs to be sent or delivered.
    pub fn is_empty(&self) -> bool {
        self.outgoing.is_empty() && self.decided.is_empty()
    }
}

/// Cap on per-flush samples retained between [`PaxosReplica::take_batch_stats`]
/// drains, so an undrained replica cannot grow without bound.
const BATCH_SAMPLE_CAP: usize = 1024;

/// Leader-side batching counters, accumulated since the last
/// [`PaxosReplica::take_batch_stats`] drain.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Batches flushed because they reached `max_batch` commands.
    pub flush_full: u64,
    /// Batches flushed because the delay bound expired (includes the
    /// zero-delay "flush immediately" case for partial batches).
    pub flush_delay: u64,
    /// Total batches flushed (each occupies one log slot).
    pub batches: u64,
    /// Total commands across those batches.
    pub batched_cmds: u64,
    /// Per-flush `(batch size, slots in flight after the flush)` samples,
    /// capped at [`BATCH_SAMPLE_CAP`] per drain interval.
    pub samples: Vec<(u32, u32)>,
}

impl BatchStats {
    fn record(&mut self, size: usize, full: bool, occupancy: usize) {
        if full {
            self.flush_full += 1;
        } else {
            self.flush_delay += 1;
        }
        self.batches += 1;
        self.batched_cmds += size as u64;
        if self.samples.len() < BATCH_SAMPLE_CAP {
            self.samples.push((size as u32, occupancy as u32));
        }
    }
}

/// One live replica's view of the log, exported for a recovering peer.
///
/// Crash-recovery with amnesia is unsafe in Paxos: a replica that forgets
/// an accepted value can let a later leader decide a different value for
/// the same slot. A restarting replica therefore rebuilds its acceptor
/// state from a *quorum* of these reports (Viewstamped-Replication-style
/// recovery): any value accepted by a quorum appears in at least one
/// report of any quorum of live peers, so merging the reported tails
/// restores every possibly-chosen value.
#[derive(Debug, Clone)]
pub struct RecoveryReport<V> {
    /// The reporter's promised ballot.
    pub promised: Ballot,
    /// The reporter's decided frontier (first slot not known decided).
    pub frontier: Slot,
    /// Commands the reporter has delivered (excluding no-ops) up to its
    /// frontier.
    pub delivered: u64,
    /// `(slot, ballot, value)` for every slot at or above the reporter's
    /// frontier it has accepted or decided (decided slots carry the
    /// chosen-value sentinel ballot).
    pub accepted: Vec<(Slot, Ballot, Entry<V>)>,
}

#[derive(Debug)]
enum Role<V> {
    Follower,
    Candidate {
        ballot: Ballot,
        /// Replicas that promised, with their reported accepted entries.
        promises: BTreeSet<usize>,
        /// Best (highest-ballot) reported value per slot.
        values: BTreeMap<Slot, (Ballot, Entry<V>)>,
        /// Highest slot reported by any promiser.
        max_slot: Option<Slot>,
    },
    Leader {
        ballot: Ballot,
        /// Next free slot.
        next_slot: Slot,
        /// Acceptances gathered per in-flight slot (includes self).
        in_flight: BTreeMap<Slot, BTreeSet<usize>>,
        ticks_since_heartbeat: u32,
    },
}

/// A full Multi-Paxos replica: proposer, acceptor and learner in one state
/// machine.
///
/// Drive it with [`PaxosReplica::on_message`], [`PaxosReplica::tick`] and
/// [`PaxosReplica::propose`]; each returns an [`Output`] with messages to
/// transmit and commands to deliver. Replica 0 starts as leader of ballot
/// `(0, 0)` so a freshly booted group makes progress without an election.
#[derive(Debug)]
pub struct PaxosReplica<V> {
    idx: usize,
    cfg: GroupConfig,
    /// Highest ballot promised (acceptor state).
    promised: Ballot,
    /// Per-slot accepted values. Chosen slots are kept with
    /// [`DECIDED_BALLOT`] so promises always carry them.
    accepted: BTreeMap<Slot, (Ballot, Entry<V>)>,
    /// Chosen entries.
    decided: BTreeMap<Slot, Entry<V>>,
    /// First slot not yet known decided (dense prefix of `decided`).
    decided_frontier: Slot,
    /// First slot not yet emitted through [`Output::decided`].
    next_deliver: Slot,
    role: Role<V>,
    /// Replica currently believed to be leader.
    leader_hint: Option<usize>,
    ticks_since_leader: u32,
    /// Proposals waiting for a known leader.
    pending: VecDeque<V>,
    /// Leader-only: proposals accumulating into the next batch. Drained
    /// into `pending` on loss of leadership so nothing is stranded.
    batch_buffer: Vec<V>,
    /// Ticks the oldest buffered proposal has waited (drives delay flush).
    buffer_wait_ticks: u32,
    /// Batching counters since the last [`PaxosReplica::take_batch_stats`].
    batch_stats: BatchStats,
    /// Commands delivered so far (no-ops excluded); survives log pruning.
    delivered_cmds: u64,
    /// Highest decided frontier any peer has advertised (via heartbeats or
    /// promises). When it runs away from our own frontier by more than the
    /// retention window, ordinary catch-up can no longer help: peers have
    /// pruned the slots we need and a state transfer is required.
    max_seen_frontier: Slot,
}

impl<V: Clone> PaxosReplica<V> {
    /// Creates replica `idx` of a group described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the group.
    pub fn new(idx: usize, cfg: GroupConfig) -> Self {
        assert!(idx < cfg.size, "replica index {idx} out of range for group of {}", cfg.size);
        let role = if idx == 0 {
            Role::Leader {
                ballot: Ballot::INITIAL,
                next_slot: Slot(0),
                in_flight: BTreeMap::new(),
                ticks_since_heartbeat: 0,
            }
        } else {
            Role::Follower
        };
        PaxosReplica {
            idx,
            cfg,
            promised: Ballot::INITIAL,
            accepted: BTreeMap::new(),
            decided: BTreeMap::new(),
            decided_frontier: Slot(0),
            next_deliver: Slot(0),
            role,
            leader_hint: Some(0),
            ticks_since_leader: 0,
            pending: VecDeque::new(),
            batch_buffer: Vec::new(),
            buffer_wait_ticks: 0,
            batch_stats: BatchStats::default(),
            delivered_cmds: 0,
            max_seen_frontier: Slot(0),
        }
    }

    /// This replica's index within its group.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Highest ballot this replica has promised (acceptor state). This is
    /// the one piece of state that must survive a crash (persist it before
    /// acting on a promise) — everything else is rebuilt from peers.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// Exports this replica's log view for a recovering peer.
    pub fn recovery_report(&self) -> RecoveryReport<V> {
        RecoveryReport {
            promised: self.promised,
            frontier: self.decided_frontier,
            delivered: self.delivered_cmds,
            accepted: self
                .accepted
                .range(self.decided_frontier..)
                .map(|(&s, &(b, ref v))| (s, b, v.clone()))
                .collect(),
        }
    }

    /// Rebuilds a replica from a quorum of peer [`RecoveryReport`]s after a
    /// crash (the caller must supply at least `cfg.quorum()` reports — see
    /// the safety argument on [`RecoveryReport`]).
    ///
    /// `promised_floor` is the promised ballot recovered from this
    /// replica's own stable storage; the rebuilt promise never drops below
    /// it, so promises made before the crash stay honoured even if every
    /// reporting peer is behind them.
    ///
    /// The replica comes back as a follower with no leader hint (an
    /// ex-leader thus steps down cleanly; the group re-elects around it).
    /// Its log is fast-forwarded to the highest reported frontier — the
    /// application state up to that frontier must be installed separately
    /// by the caller (snapshot transfer); slots already decided above the
    /// frontier are returned through the accompanying [`Output`] exactly as
    /// live decisions would be.
    ///
    /// # Panics
    ///
    /// Panics if `reports` holds fewer than `cfg.quorum()` reports.
    pub fn recover_from(
        idx: usize,
        cfg: GroupConfig,
        promised_floor: Ballot,
        reports: &[RecoveryReport<V>],
    ) -> (Self, Output<V>) {
        assert!(
            reports.len() >= cfg.quorum(),
            "recovery needs a quorum of reports ({} < {})",
            reports.len(),
            cfg.quorum()
        );
        let frontier = reports.iter().map(|r| r.frontier).max().unwrap_or(Slot(0));
        let delivered = reports
            .iter()
            .filter(|r| r.frontier == frontier)
            .map(|r| r.delivered)
            .max()
            .unwrap_or(0);
        let mut promised = promised_floor;
        let mut merged: BTreeMap<Slot, (Ballot, Entry<V>)> = BTreeMap::new();
        for r in reports {
            promised = promised.max(r.promised);
            for (slot, ballot, value) in &r.accepted {
                if *slot < frontier {
                    continue;
                }
                match merged.get(slot) {
                    Some(&(existing, _)) if existing >= *ballot => {}
                    _ => {
                        merged.insert(*slot, (*ballot, value.clone()));
                    }
                }
            }
        }
        let mut replica = PaxosReplica {
            idx,
            cfg,
            promised,
            accepted: merged,
            decided: BTreeMap::new(),
            decided_frontier: frontier,
            next_deliver: frontier,
            role: Role::Follower,
            leader_hint: None,
            ticks_since_leader: 0,
            pending: VecDeque::new(),
            batch_buffer: Vec::new(),
            buffer_wait_ticks: 0,
            batch_stats: BatchStats::default(),
            delivered_cmds: delivered,
            max_seen_frontier: frontier,
        };
        // Slots already chosen above the frontier re-deliver through the
        // normal path so the caller's application observes them once.
        let mut out = Output::new();
        let chosen: Vec<(Slot, Entry<V>)> = replica
            .accepted
            .iter()
            .filter(|&(_, &(b, _))| b == DECIDED_BALLOT)
            .map(|(&s, (_, v))| (s, v.clone()))
            .collect();
        for (slot, value) in chosen {
            replica.record_decided(slot, value, &mut out);
        }
        (replica, out)
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.role, Role::Leader { .. })
    }

    /// The replica currently believed to be leader, if any.
    pub fn leader_hint(&self) -> Option<usize> {
        self.leader_hint
    }

    /// First slot not yet known decided.
    pub fn decided_frontier(&self) -> Slot {
        self.decided_frontier
    }

    /// Number of commands (excluding no-ops) this replica has delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_cmds
    }

    /// True when this replica has fallen further behind the group's decided
    /// frontier than the log-retention window. Slot-by-slot catch-up cannot
    /// close such a gap (peers have pruned the needed slots); the caller
    /// must run a state transfer — rebuild via [`PaxosReplica::recover_from`]
    /// plus an application snapshot, exactly as after a crash.
    pub fn needs_state_transfer(&self) -> bool {
        self.max_seen_frontier.0 > self.decided_frontier.0.saturating_add(LOG_RETENTION)
    }

    /// Submits a command for total ordering.
    ///
    /// At the leader the command enters the batch buffer and (with the
    /// default [`crate::BatchConfig`]) starts phase 2 immediately;
    /// elsewhere the command is forwarded to the believed leader or
    /// buffered until one is known.
    pub fn propose(&mut self, value: V) -> Output<V> {
        let mut out = Output::new();
        self.propose_inner(value, &mut out);
        out
    }

    fn propose_inner(&mut self, value: V, out: &mut Output<V>) {
        if self.is_leader() {
            self.batch_buffer.push(value);
            self.maybe_flush_batch(out);
        } else if let Some(leader) = self.leader_hint {
            out.outgoing.push((leader, PaxosMsg::Forward { value }));
        } else {
            self.pending.push_back(value);
        }
    }

    /// Leader-only: flushes the batch buffer into log slots as long as a
    /// flush condition holds (buffer full, or delay expired) and the
    /// pipelining window has room. See [`crate::BatchConfig`].
    fn maybe_flush_batch(&mut self, out: &mut Output<V>) {
        loop {
            let Role::Leader { in_flight, .. } = &self.role else { return };
            if self.batch_buffer.is_empty() {
                self.buffer_wait_ticks = 0;
                return;
            }
            if !self.cfg.batch.window_open(in_flight.len()) {
                return;
            }
            let full = self.batch_buffer.len() >= self.cfg.batch.max_batch;
            if !full && self.buffer_wait_ticks < self.cfg.batch.max_batch_delay_ticks {
                return;
            }
            let take = self.batch_buffer.len().min(self.cfg.batch.max_batch);
            let mut chunk: Vec<V> = self.batch_buffer.drain(..take).collect();
            // A singleton rides as Cmd (no Vec framing on the wire); pop
            // then re-check emptiness so no invariant needs a panic.
            let entry = match chunk.pop() {
                Some(single) if chunk.is_empty() => Entry::Cmd(single),
                Some(last) => {
                    chunk.push(last);
                    Entry::Batch(chunk)
                }
                None => return, // take >= 1, but degrade instead of asserting
            };
            self.lead_value(entry, out);
            let occupancy = match &self.role {
                Role::Leader { in_flight, .. } => in_flight.len(),
                _ => 0,
            };
            self.batch_stats.record(take, full, occupancy);
        }
    }

    /// Drains and resets the leader-side batching counters. Replicas that
    /// never lead report all-zero stats.
    pub fn take_batch_stats(&mut self) -> BatchStats {
        std::mem::take(&mut self.batch_stats)
    }

    /// Number of undecided slots this leader currently has in flight
    /// (0 on non-leaders).
    pub fn slots_in_flight(&self) -> usize {
        match &self.role {
            Role::Leader { in_flight, .. } => in_flight.len(),
            _ => 0,
        }
    }

    /// Number of proposals waiting in the leader's batch buffer.
    pub fn batch_buffered(&self) -> usize {
        self.batch_buffer.len()
    }

    /// Leader-only: assign the next slot to `entry` and issue Accepts.
    fn lead_value(&mut self, entry: Entry<V>, out: &mut Output<V>) {
        let Role::Leader { ballot, next_slot, in_flight, .. } = &mut self.role else {
            // detlint::allow(P003): every caller checks Role::Leader first; silently dropping `entry` here would lose a proposal, so a loud local-invariant failure is safer
            unreachable!("lead_value called on non-leader");
        };
        let slot = *next_slot;
        *next_slot = next_slot.next();
        let ballot = *ballot;
        in_flight.entry(slot).or_default().insert(self.idx);
        // Leader self-accepts.
        self.accepted.insert(slot, (ballot, entry.clone()));
        for peer in (0..self.cfg.size).filter(|&i| i != self.idx) {
            out.outgoing.push((peer, PaxosMsg::Accept { ballot, slot, value: entry.clone() }));
        }
        // Single-replica group: quorum is 1, decide immediately.
        self.try_decide(slot, out);
    }

    /// Checks whether `slot` has a quorum of acceptances and decides it.
    fn try_decide(&mut self, slot: Slot, out: &mut Output<V>) {
        let quorum = self.cfg.quorum();
        let Role::Leader { in_flight, .. } = &mut self.role else { return };
        let Some(votes) = in_flight.get(&slot) else { return };
        if votes.len() < quorum {
            return;
        }
        in_flight.remove(&slot);
        let Some(value) = self.accepted.get(&slot).map(|(_, v)| v.clone()) else {
            // A quorum for a slot we never accepted means ballot
            // bookkeeping went wrong locally; drop the decision rather
            // than crash — a ballot change re-proposes the slot.
            return;
        };
        self.record_decided(slot, value.clone(), out);
        for peer in (0..self.cfg.size).filter(|&i| i != self.idx) {
            out.outgoing.push((peer, PaxosMsg::Decide { slot, value: value.clone() }));
        }
    }

    /// Stores a chosen entry and drains newly in-order deliverables.
    fn record_decided(&mut self, slot: Slot, value: Entry<V>, out: &mut Output<V>) {
        self.decided.entry(slot).or_insert_with(|| value.clone());
        self.accepted.insert(slot, (DECIDED_BALLOT, value));
        while self.decided.contains_key(&self.decided_frontier) {
            self.decided_frontier = self.decided_frontier.next();
        }
        while let Some(entry) = self.decided.get(&self.next_deliver) {
            match entry {
                Entry::Cmd(v) => {
                    out.decided.push((self.next_deliver, v.clone()));
                    self.delivered_cmds += 1;
                }
                Entry::Batch(vs) => {
                    for v in vs {
                        out.decided.push((self.next_deliver, v.clone()));
                    }
                    self.delivered_cmds += vs.len() as u64;
                }
                Entry::Noop => {}
            }
            self.next_deliver = self.next_deliver.next();
        }
        // Prune the log far behind the delivery frontier to bound memory.
        // `pop_first` (typically one entry per call once past retention)
        // instead of `split_off`, which rebuilds both trees — and their
        // node allocations — on every decided slot.
        if self.next_deliver.0 > LOG_RETENTION {
            let cutoff = Slot(self.next_deliver.0 - LOG_RETENTION);
            while self.decided.first_key_value().map(|(&s, _)| s < cutoff).unwrap_or(false) {
                self.decided.pop_first();
            }
            while self.accepted.first_key_value().map(|(&s, _)| s < cutoff).unwrap_or(false) {
                self.accepted.pop_first();
            }
        }
    }

    /// Advances the replica's clock by one tick.
    ///
    /// Leaders emit heartbeats; followers count leader silence and start an
    /// election when their (index-staggered) timeout expires.
    pub fn tick(&mut self) -> Output<V> {
        let mut out = Output::new();
        match &mut self.role {
            Role::Leader { ballot, ticks_since_heartbeat, .. } => {
                *ticks_since_heartbeat += 1;
                if *ticks_since_heartbeat >= self.cfg.heartbeat_interval_ticks {
                    *ticks_since_heartbeat = 0;
                    let hb = PaxosMsg::Heartbeat {
                        ballot: *ballot,
                        decided_up_to: self.decided_frontier,
                    };
                    for peer in (0..self.cfg.size).filter(|&i| i != self.idx) {
                        out.outgoing.push((peer, hb.clone()));
                    }
                }
                if !self.batch_buffer.is_empty() {
                    self.buffer_wait_ticks += 1;
                    self.maybe_flush_batch(&mut out);
                }
            }
            Role::Follower | Role::Candidate { .. } => {
                self.ticks_since_leader += 1;
                let timeout = self.cfg.election_timeout_ticks * (1 + self.idx as u32);
                if self.ticks_since_leader >= timeout {
                    self.ticks_since_leader = 0;
                    self.start_election(&mut out);
                }
            }
        }
        out
    }

    fn start_election(&mut self, out: &mut Output<V>) {
        let ballot = self.promised.next_for(self.idx);
        self.promised = ballot;
        self.leader_hint = None;
        let mut values = BTreeMap::new();
        let mut max_slot = None;
        // Self-promise: contribute our own accepted entries.
        for (&slot, &(b, ref v)) in self.accepted.range(self.decided_frontier..) {
            values.insert(slot, (b, v.clone()));
            max_slot = Some(max_slot.map_or(slot, |m: Slot| m.max(slot)));
        }
        let mut promises = BTreeSet::new();
        promises.insert(self.idx);
        self.role = Role::Candidate { ballot, promises, values, max_slot };
        for peer in (0..self.cfg.size).filter(|&i| i != self.idx) {
            out.outgoing.push((peer, PaxosMsg::Prepare { ballot }));
        }
        // Single-replica group elects itself instantly.
        self.try_become_leader(out);
    }

    fn try_become_leader(&mut self, out: &mut Output<V>) {
        let quorum = self.cfg.quorum();
        let Role::Candidate { ballot, promises, values, max_slot } = &mut self.role else { return };
        if promises.len() < quorum {
            return;
        }
        let ballot = *ballot;
        let values = std::mem::take(values);
        let max_slot = *max_slot;
        // Re-propose every undecided slot up to the highest reported one,
        // filling true gaps with no-ops, then open the log for new commands.
        let mut next_slot = self.decided_frontier;
        self.role = Role::Leader {
            ballot,
            next_slot,
            in_flight: BTreeMap::new(),
            ticks_since_heartbeat: 0,
        };
        self.leader_hint = Some(self.idx);
        if let Some(max_slot) = max_slot {
            while next_slot <= max_slot {
                let slot = next_slot;
                next_slot = next_slot.next();
                if self.decided.contains_key(&slot) {
                    continue;
                }
                let entry = values.get(&slot).map(|(_, v)| v.clone()).unwrap_or(Entry::Noop);
                self.relead_slot(slot, entry, ballot, out);
            }
            if let Role::Leader { next_slot: ns, .. } = &mut self.role {
                *ns = next_slot;
            }
        }
        // Flush proposals buffered while leaderless through the batcher.
        self.batch_buffer.extend(self.pending.drain(..));
        self.maybe_flush_batch(out);
    }

    /// Phase 2 for a specific recovered slot (leader takeover path).
    fn relead_slot(&mut self, slot: Slot, entry: Entry<V>, ballot: Ballot, out: &mut Output<V>) {
        // Only reached from become_leader, which just installed Role::Leader;
        // a non-leader here cannot make progress, so degrade quietly.
        let Role::Leader { in_flight, .. } = &mut self.role else { return };
        in_flight.entry(slot).or_default().insert(self.idx);
        self.accepted.insert(slot, (ballot, entry.clone()));
        for peer in (0..self.cfg.size).filter(|&i| i != self.idx) {
            out.outgoing.push((peer, PaxosMsg::Accept { ballot, slot, value: entry.clone() }));
        }
        self.try_decide(slot, out);
    }

    /// Steps down if `ballot` proves a higher-ballot leader exists.
    fn maybe_step_down(&mut self, ballot: Ballot) {
        let our = match &self.role {
            Role::Leader { ballot, .. } | Role::Candidate { ballot, .. } => Some(*ballot),
            Role::Follower => None,
        };
        if let Some(our) = our {
            if ballot > our {
                self.role = Role::Follower;
                // Un-flushed batched proposals go back to `pending` (ahead
                // of anything buffered there) so they are forwarded to the
                // new leader instead of being lost.
                for v in self.batch_buffer.drain(..).rev() {
                    self.pending.push_front(v);
                }
                self.buffer_wait_ticks = 0;
            }
        }
    }

    /// Feeds one protocol message from replica `from` into the state
    /// machine.
    pub fn on_message(&mut self, from: usize, msg: PaxosMsg<V>) -> Output<V> {
        let mut out = Output::new();
        match msg {
            PaxosMsg::Prepare { ballot } => {
                if ballot > self.promised {
                    self.promised = ballot;
                    self.maybe_step_down(ballot);
                    self.ticks_since_leader = 0;
                    let accepted: Vec<_> = self
                        .accepted
                        .range(self.decided_frontier..)
                        .map(|(&s, &(b, ref v))| (s, b, v.clone()))
                        .collect();
                    out.outgoing.push((
                        from,
                        PaxosMsg::Promise {
                            ballot,
                            accepted,
                            decided_up_to: self.decided_frontier,
                        },
                    ));
                } else {
                    out.outgoing.push((from, PaxosMsg::Nack { ballot: self.promised }));
                }
            }
            PaxosMsg::Promise { ballot, accepted, decided_up_to } => {
                self.max_seen_frontier = self.max_seen_frontier.max(decided_up_to);
                // A promiser that is ahead on decisions implies slots we can
                // fetch; remember to catch up from it.
                if decided_up_to > self.decided_frontier {
                    out.outgoing.push((
                        from,
                        PaxosMsg::CatchUpRequest {
                            from_slot: self.decided_frontier,
                            to_slot: decided_up_to,
                        },
                    ));
                }
                if let Role::Candidate { ballot: our, promises, values, max_slot } = &mut self.role
                {
                    if ballot == *our {
                        promises.insert(from);
                        for (slot, b, v) in accepted {
                            *max_slot = Some(max_slot.map_or(slot, |m: Slot| m.max(slot)));
                            match values.get(&slot) {
                                Some(&(existing, _)) if existing >= b => {}
                                _ => {
                                    values.insert(slot, (b, v));
                                }
                            }
                        }
                        self.try_become_leader(&mut out);
                    }
                }
            }
            PaxosMsg::Accept { ballot, slot, value } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.maybe_step_down(ballot);
                    self.leader_hint = Some(ballot.owner);
                    self.ticks_since_leader = 0;
                    // Never overwrite a chosen value.
                    let already_decided =
                        matches!(self.accepted.get(&slot), Some(&(b, _)) if b == DECIDED_BALLOT);
                    if !already_decided {
                        self.accepted.insert(slot, (ballot, value));
                    }
                    out.outgoing.push((from, PaxosMsg::Accepted { ballot, slot }));
                    self.flush_pending(&mut out);
                } else {
                    out.outgoing.push((from, PaxosMsg::Nack { ballot: self.promised }));
                }
            }
            PaxosMsg::Accepted { ballot, slot } => {
                if let Role::Leader { ballot: our, in_flight, .. } = &mut self.role {
                    if ballot == *our {
                        if let Some(votes) = in_flight.get_mut(&slot) {
                            votes.insert(from);
                            self.try_decide(slot, &mut out);
                            // A decision may have opened the window.
                            self.maybe_flush_batch(&mut out);
                        }
                    }
                }
            }
            PaxosMsg::Decide { slot, value } => {
                self.ticks_since_leader = 0;
                self.record_decided(slot, value, &mut out);
            }
            PaxosMsg::Heartbeat { ballot, decided_up_to } => {
                self.max_seen_frontier = self.max_seen_frontier.max(decided_up_to);
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.maybe_step_down(ballot);
                    self.leader_hint = Some(ballot.owner);
                    self.ticks_since_leader = 0;
                    if decided_up_to > self.decided_frontier {
                        out.outgoing.push((
                            from,
                            PaxosMsg::CatchUpRequest {
                                from_slot: self.decided_frontier,
                                to_slot: decided_up_to,
                            },
                        ));
                    }
                    self.flush_pending(&mut out);
                }
            }
            PaxosMsg::CatchUpRequest { from_slot, to_slot } => {
                let to_slot = Slot(to_slot.0.min(from_slot.0.saturating_add(CATCH_UP_BATCH)));
                let mut s = from_slot;
                while s < to_slot {
                    if let Some(v) = self.decided.get(&s) {
                        out.outgoing.push((from, PaxosMsg::Decide { slot: s, value: v.clone() }));
                    }
                    s = s.next();
                }
            }
            PaxosMsg::Forward { value } => {
                self.propose_inner(value, &mut out);
            }
            PaxosMsg::Nack { ballot } => {
                if ballot > self.promised {
                    self.promised = ballot;
                }
                self.maybe_step_down(ballot);
            }
        }
        out
    }

    /// Forwards buffered proposals once a leader is known.
    fn flush_pending(&mut self, out: &mut Output<V>) {
        if self.pending.is_empty() {
            return;
        }
        if self.is_leader() {
            self.batch_buffer.extend(self.pending.drain(..));
            self.maybe_flush_batch(out);
        } else if let Some(leader) = self.leader_hint {
            while let Some(v) = self.pending.pop_front() {
                out.outgoing.push((leader, PaxosMsg::Forward { value: v }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BatchConfig;

    /// A toy in-memory network for driving replicas directly.
    struct Net {
        replicas: Vec<PaxosReplica<u64>>,
        queue: VecDeque<(usize, usize, PaxosMsg<u64>)>,
        delivered: Vec<Vec<(Slot, u64)>>,
        /// Crashed replicas drop all traffic.
        down: BTreeSet<usize>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            Self::with_cfg(GroupConfig::new(n))
        }

        fn with_cfg(cfg: GroupConfig) -> Self {
            let n = cfg.size;
            Net {
                replicas: (0..n).map(|i| PaxosReplica::new(i, cfg.clone())).collect(),
                queue: VecDeque::new(),
                delivered: vec![Vec::new(); n],
                down: BTreeSet::new(),
            }
        }

        fn absorb(&mut self, from: usize, out: Output<u64>) {
            for (to, msg) in out.outgoing {
                self.queue.push_back((from, to, msg));
            }
            self.delivered[from].extend(out.decided);
        }

        fn propose_at(&mut self, idx: usize, v: u64) {
            let out = self.replicas[idx].propose(v);
            self.absorb(idx, out);
        }

        fn tick_all(&mut self) {
            for i in 0..self.replicas.len() {
                if self.down.contains(&i) {
                    continue;
                }
                let out = self.replicas[i].tick();
                self.absorb(i, out);
            }
        }

        fn drain(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "message storm");
                if self.down.contains(&to) || self.down.contains(&from) {
                    continue;
                }
                let out = self.replicas[to].on_message(from, msg);
                self.absorb(to, out);
            }
        }

        fn run(&mut self, ticks: usize) {
            for _ in 0..ticks {
                self.tick_all();
                self.drain();
            }
        }
    }

    #[test]
    fn three_replicas_decide_a_command() {
        let mut net = Net::new(3);
        net.propose_at(0, 7);
        net.drain();
        for d in &net.delivered {
            assert_eq!(d, &[(Slot(0), 7)]);
        }
    }

    #[test]
    fn single_replica_group_decides_alone() {
        let mut net = Net::new(1);
        net.propose_at(0, 1);
        net.propose_at(0, 2);
        net.drain();
        assert_eq!(net.delivered[0], vec![(Slot(0), 1), (Slot(1), 2)]);
    }

    #[test]
    fn commands_deliver_in_proposal_order_at_leader() {
        let mut net = Net::new(3);
        for v in 0..50 {
            net.propose_at(0, v);
        }
        net.drain();
        let expect: Vec<(Slot, u64)> = (0..50).map(|v| (Slot(v), v)).collect();
        for d in &net.delivered {
            assert_eq!(d, &expect);
        }
    }

    #[test]
    fn follower_forwards_to_leader() {
        let mut net = Net::new(3);
        net.propose_at(2, 99);
        net.drain();
        for d in &net.delivered {
            assert_eq!(d, &[(Slot(0), 99)]);
        }
    }

    #[test]
    fn all_replicas_agree_on_identical_logs() {
        let mut net = Net::new(5);
        for v in 0..20 {
            net.propose_at((v % 5) as usize, v);
            net.drain();
        }
        net.run(5);
        let reference = &net.delivered[0];
        assert_eq!(reference.len(), 20);
        for d in &net.delivered {
            assert_eq!(d, reference);
        }
    }

    #[test]
    fn leader_crash_elects_new_leader_and_preserves_log() {
        let mut net = Net::new(3);
        for v in 0..5 {
            net.propose_at(0, v);
        }
        net.drain();
        net.down.insert(0);
        // Run enough ticks for replica 1 to elect itself.
        net.run(30);
        assert!(net.replicas[1].is_leader() || net.replicas[2].is_leader());
        let new_leader = if net.replicas[1].is_leader() { 1 } else { 2 };
        net.propose_at(new_leader, 100);
        net.run(5);
        // Both surviving replicas deliver the old prefix then the new command.
        for &i in &[1usize, 2] {
            let vals: Vec<u64> = net.delivered[i].iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, vec![0, 1, 2, 3, 4, 100], "replica {i}");
        }
    }

    #[test]
    fn minority_crash_does_not_block_progress() {
        let mut net = Net::new(5);
        net.down.insert(3);
        net.down.insert(4);
        for v in 0..10 {
            net.propose_at(0, v);
        }
        net.run(5);
        let vals: Vec<u64> = net.delivered[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn new_leader_recovers_partially_accepted_values() {
        // Leader gets value accepted at a quorum but crashes before anyone
        // learns the decision; the next leader must re-decide the same value.
        let cfg = GroupConfig::new(3);
        let mut r0: PaxosReplica<u64> = PaxosReplica::new(0, cfg.clone());
        let mut r1: PaxosReplica<u64> = PaxosReplica::new(1, cfg.clone());
        let mut r2: PaxosReplica<u64> = PaxosReplica::new(2, cfg.clone());

        let out = r0.propose(42);
        // Deliver the Accept only to replica 1, then crash replica 0.
        let accept = out
            .outgoing
            .iter()
            .find_map(|(to, m)| (*to == 1).then(|| m.clone()))
            .expect("accept for r1");
        let _ = r1.on_message(0, accept);

        // Force replica 1 to run an election with replica 2.
        let mut out = Output::new();
        r1.start_election(&mut out);
        let prepare = out
            .outgoing
            .iter()
            .find_map(|(to, m)| (*to == 2).then(|| m.clone()))
            .expect("prepare for r2");
        let out2 = r2.on_message(1, prepare);
        let promise = out2
            .outgoing
            .into_iter()
            .find_map(|(to, m)| (to == 1).then_some(m))
            .expect("promise from r2");
        let out3 = r1.on_message(2, promise);
        assert!(r1.is_leader());
        // The recovered Accept for slot 0 must carry 42 again.
        let reaccept = out3.outgoing.iter().any(|(_, m)| {
            matches!(m, PaxosMsg::Accept { slot: Slot(0), value: Entry::Cmd(42), .. })
        });
        assert!(reaccept, "new leader must re-propose the possibly-chosen value");
    }

    #[test]
    fn ballots_total_order_and_next_for() {
        let b = Ballot { round: 3, owner: 1 };
        assert!(b.next_for(2) > b);
        assert!(b.next_for(0) > b);
        assert_eq!(b.next_for(2), Ballot { round: 3, owner: 2 });
        assert_eq!(b.next_for(1), Ballot { round: 4, owner: 1 });
        assert!(DECIDED_BALLOT > b.next_for(usize::MAX - 1));
    }

    #[test]
    fn catch_up_fills_lagging_replica() {
        let mut net = Net::new(3);
        for v in 0..5 {
            net.propose_at(0, v);
        }
        net.drain();
        // Replica 2 "lost" its deliveries — simulate a fresh learner joining.
        let cfg = GroupConfig::new(3);
        net.replicas[2] = PaxosReplica::new(2, cfg);
        net.delivered[2].clear();
        // Heartbeats advertise the frontier and trigger catch-up.
        net.run(10);
        let vals: Vec<u64> = net.delivered[2].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recovery_from_quorum_matches_decided_log() {
        let mut net = Net::new(3);
        for v in 0..8 {
            net.propose_at(0, v);
        }
        net.drain();
        // Replica 2 crashes and loses everything; rebuild from peers 0+1.
        let reports = vec![net.replicas[0].recovery_report(), net.replicas[1].recovery_report()];
        let cfg = GroupConfig::new(3);
        let (rebuilt, out) = PaxosReplica::recover_from(2, cfg, Ballot::INITIAL, &reports);
        net.replicas[2] = rebuilt;
        net.delivered[2].clear();
        // The recovered replica is fast-forwarded: nothing re-delivers (the
        // application state arrives by snapshot), and its frontier matches.
        assert!(out.decided.is_empty());
        assert_eq!(net.replicas[2].decided_frontier(), net.replicas[0].decided_frontier());
        assert_eq!(net.replicas[2].delivered_count(), net.replicas[0].delivered_count());
        assert!(!net.replicas[2].is_leader());
        // And it participates normally afterwards.
        net.propose_at(0, 100);
        net.run(5);
        let vals: Vec<u64> = net.delivered[2].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![100]);
    }

    #[test]
    fn recovery_preserves_possibly_chosen_value() {
        // r1 accepts 42 for slot 0 (quorum {r0, r1}), then crashes and
        // recovers from {r0, r2}. r0's report carries the accepted value, so
        // a later election must still decide 42 — amnesia would lose it.
        let cfg = GroupConfig::new(3);
        let mut r0: PaxosReplica<u64> = PaxosReplica::new(0, cfg.clone());
        let mut r1: PaxosReplica<u64> = PaxosReplica::new(1, cfg.clone());
        let mut r2: PaxosReplica<u64> = PaxosReplica::new(2, cfg.clone());
        let out = r0.propose(42);
        let accept = out
            .outgoing
            .iter()
            .find_map(|(to, m)| (*to == 1).then(|| m.clone()))
            .expect("accept for r1");
        let _ = r1.on_message(0, accept);

        let floor = r1.promised();
        let reports = vec![r0.recovery_report(), r2.recovery_report()];
        let (r1, _) = PaxosReplica::recover_from(1, cfg.clone(), floor, &reports);
        let mut r1 = r1;

        // r0 crashes; r1 runs an election with r2 and must re-propose 42.
        let mut out = Output::new();
        r1.start_election(&mut out);
        let prepare = out
            .outgoing
            .iter()
            .find_map(|(to, m)| (*to == 2).then(|| m.clone()))
            .expect("prepare for r2");
        let out2 = r2.on_message(1, prepare);
        let promise = out2
            .outgoing
            .into_iter()
            .find_map(|(to, m)| (to == 1).then_some(m))
            .expect("promise from r2");
        let out3 = r1.on_message(2, promise);
        assert!(r1.is_leader());
        let reaccept = out3.outgoing.iter().any(|(_, m)| {
            matches!(m, PaxosMsg::Accept { slot: Slot(0), value: Entry::Cmd(42), .. })
        });
        assert!(reaccept, "recovered replica must re-propose the possibly-chosen value");
    }

    #[test]
    fn recovered_ex_leader_rejoins_as_follower() {
        let mut net = Net::new(3);
        for v in 0..3 {
            net.propose_at(0, v);
        }
        net.drain();
        assert!(net.replicas[0].is_leader());
        let floor = net.replicas[0].promised();
        let reports = vec![net.replicas[1].recovery_report(), net.replicas[2].recovery_report()];
        let cfg = GroupConfig::new(3);
        let (rebuilt, _) = PaxosReplica::recover_from(0, cfg, floor, &reports);
        net.replicas[0] = rebuilt;
        net.delivered[0].clear();
        assert!(!net.replicas[0].is_leader());
        assert_eq!(net.replicas[0].leader_hint(), None);
        // The group notices the silent ex-leader and elects a new one;
        // afterwards everyone (including the recovered node) makes progress.
        net.run(40);
        // A proper election (possibly won by the recovered node itself —
        // its stagger is shortest) restores a leader.
        assert!(net.replicas.iter().any(|r| r.is_leader()));
        let leader = net.replicas.iter().position(|r| r.is_leader()).unwrap();
        net.propose_at(leader, 7);
        net.run(5);
        let vals: Vec<u64> = net.delivered[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![7]);
    }

    #[test]
    fn recovery_promised_floor_is_honoured() {
        let cfg = GroupConfig::new(3);
        let floor = Ballot { round: 9, owner: 1 };
        let reports: Vec<RecoveryReport<u64>> = vec![
            RecoveryReport {
                promised: Ballot::INITIAL,
                frontier: Slot(0),
                delivered: 0,
                accepted: Vec::new(),
            },
            RecoveryReport {
                promised: Ballot::INITIAL,
                frontier: Slot(0),
                delivered: 0,
                accepted: Vec::new(),
            },
        ];
        let (r, _) = PaxosReplica::recover_from(1, cfg, floor, &reports);
        assert_eq!(r.promised(), floor);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn recovery_rejects_sub_quorum_reports() {
        let cfg = GroupConfig::new(3);
        let reports: Vec<RecoveryReport<u64>> = vec![RecoveryReport {
            promised: Ballot::INITIAL,
            frontier: Slot(0),
            delivered: 0,
            accepted: Vec::new(),
        }];
        let _ = PaxosReplica::recover_from(1, cfg, Ballot::INITIAL, &reports);
    }

    #[test]
    fn delivered_count_counts_only_commands() {
        let mut net = Net::new(3);
        net.propose_at(0, 5);
        net.drain();
        assert_eq!(net.replicas[0].delivered_count(), 1);
        assert_eq!(net.replicas[1].delivered_count(), 1);
    }

    fn batched(max_batch: usize, max_batch_delay_ticks: u32, window: usize) -> GroupConfig {
        GroupConfig::new(3).with_batching(BatchConfig { max_batch, max_batch_delay_ticks, window })
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_delay() {
        let mut net = Net::with_cfg(batched(4, 1_000, 0));
        for v in 0..4 {
            net.propose_at(0, v);
        }
        net.drain();
        // All four commands share one slot, in proposal order.
        let expect: Vec<(Slot, u64)> = (0..4).map(|v| (Slot(0), v)).collect();
        for d in &net.delivered {
            assert_eq!(d, &expect);
        }
        let stats = net.replicas[0].take_batch_stats();
        assert_eq!(stats.flush_full, 1);
        assert_eq!(stats.flush_delay, 0);
        assert_eq!(stats.batched_cmds, 4);
    }

    #[test]
    fn partial_batch_flushes_only_after_delay() {
        let mut net = Net::with_cfg(batched(8, 3, 0));
        net.propose_at(0, 1);
        net.propose_at(0, 2);
        net.drain();
        assert!(net.delivered[0].is_empty(), "partial batch must wait for the delay");
        assert_eq!(net.replicas[0].batch_buffered(), 2);
        net.run(2);
        assert!(net.delivered[0].is_empty(), "delay has not expired yet");
        net.run(1);
        let vals: Vec<u64> = net.delivered[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1, 2]);
        let stats = net.replicas[0].take_batch_stats();
        assert_eq!(stats.flush_full, 0);
        assert_eq!(stats.flush_delay, 1);
    }

    #[test]
    fn single_command_flush_uses_plain_cmd_entry() {
        // A batch of one must stay wire-compatible with the unbatched
        // protocol (`Entry::Cmd`), so mixed-version groups interoperate.
        let cfg = batched(8, 0, 0);
        let mut r0: PaxosReplica<u64> = PaxosReplica::new(0, cfg);
        let out = r0.propose(42);
        assert!(out
            .outgoing
            .iter()
            .any(|(_, m)| { matches!(m, PaxosMsg::Accept { value: Entry::Cmd(42), .. }) }));
    }

    #[test]
    fn window_gates_inflight_and_commands_batch_under_backpressure() {
        let mut net = Net::with_cfg(batched(8, 0, 1));
        for v in 0..16 {
            net.propose_at(0, v);
        }
        // Only one slot may be in flight before any acknowledgement.
        assert_eq!(net.replicas[0].slots_in_flight(), 1);
        assert_eq!(net.replicas[0].batch_buffered(), 15);
        net.drain();
        let vals: Vec<u64> = net.delivered[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, (0..16).collect::<Vec<_>>());
        for d in &net.delivered {
            let vals: Vec<u64> = d.iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, (0..16).collect::<Vec<_>>());
        }
        // 16 commands fit in 3 slots: 1 (initial) + 8 (full batch) + 7.
        let slots: BTreeSet<Slot> = net.delivered[0].iter().map(|&(s, _)| s).collect();
        assert_eq!(slots.len(), 3);
        let stats = net.replicas[0].take_batch_stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.flush_full, 1);
        assert_eq!(stats.batched_cmds, 16);
    }

    #[test]
    fn leader_change_mid_batch_preserves_buffered_commands() {
        let mut net = Net::with_cfg(batched(8, 5, 0));
        for v in 0..3 {
            net.propose_at(0, v);
        }
        net.drain();
        // The partial batch is still buffered at the old leader.
        assert_eq!(net.replicas[0].batch_buffered(), 3);
        assert!(net.delivered[0].is_empty());
        // Replica 1 usurps leadership with a higher ballot; replica 0's
        // buffered commands must survive the step-down and reach the new
        // leader via forwarding.
        let mut out = Output::new();
        net.replicas[1].start_election(&mut out);
        net.absorb(1, out);
        net.run(20);
        assert!(net.replicas[1].is_leader());
        assert!(!net.replicas[0].is_leader());
        assert_eq!(net.replicas[0].batch_buffered(), 0);
        for (i, d) in net.delivered.iter().enumerate() {
            let vals: Vec<u64> = d.iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, vec![0, 1, 2], "replica {i}");
        }
    }

    #[test]
    fn batched_delivery_order_matches_unbatched() {
        // The same proposal sequence must produce the same delivered
        // command sequence whatever the batch size (slots differ).
        let mut plain = Net::new(3);
        let mut batchy = Net::with_cfg(batched(8, 0, 1));
        for v in 0..50 {
            plain.propose_at(0, v);
            batchy.propose_at(0, v);
            if v % 7 == 0 {
                plain.drain();
                batchy.drain();
            }
        }
        plain.run(5);
        batchy.run(5);
        let plain_vals: Vec<u64> = plain.delivered[0].iter().map(|&(_, v)| v).collect();
        let batchy_vals: Vec<u64> = batchy.delivered[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(plain_vals, batchy_vals);
        assert_eq!(plain_vals, (0..50).collect::<Vec<_>>());
        // Batching used strictly fewer consensus instances.
        let plain_slots: BTreeSet<Slot> = plain.delivered[0].iter().map(|&(s, _)| s).collect();
        let batchy_slots: BTreeSet<Slot> = batchy.delivered[0].iter().map(|&(s, _)| s).collect();
        assert!(batchy_slots.len() < plain_slots.len());
    }

    #[test]
    fn delivered_count_includes_batched_commands() {
        let mut net = Net::with_cfg(batched(4, 1_000, 0));
        for v in 0..4 {
            net.propose_at(0, v);
        }
        net.drain();
        for r in &net.replicas {
            assert_eq!(r.delivered_count(), 4);
        }
    }
}
