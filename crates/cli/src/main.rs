//! `dynastar` — run DynaStar simulation scenarios from the command line.
//!
//! ```text
//! dynastar chirper  --partitions 4 --mode dynastar --users 2000 --clients 8 --secs 60
//! dynastar tpcc     --partitions 4 --mode ssmr     --clients 8 --secs 60
//! dynastar scenario --name flash_crowd --staged on --secs 30
//! ```
//!
//! Modes: `dynastar` (default), `ssmr` (S-SMR\* with optimized static
//! placement), `dssmr`. All runs are deterministic in `--seed`.

#![forbid(unsafe_code)]

mod args;

use std::collections::BTreeMap;
use std::sync::Arc;

use args::Args;
use dynastar_bench::setup::{chirper_cluster, tpcc_cluster, ChirperSetup, Placement, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::server::{ExecConfig, ServerConfig};
use dynastar_core::{
    Application, BatchConfig, ClusterBuilder, ClusterConfig, CommandKind, LocKey, Mode,
    PartitionId, VarId,
};
use dynastar_runtime::nemesis::NemesisPlan;
use dynastar_runtime::{Metrics, SimDuration, SimTime};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};
use dynastar_workloads::scenarios::{
    churn_nemesis, flash_crowd, migration_brownout, DiurnalRotation, ScenarioWorkload, ZipfRamp,
};
use dynastar_workloads::tpcc::{self, TpccWorkload};
use rand::rngs::StdRng;

const USAGE: &str = "\
usage: dynastar <chirper|tpcc|scenario> [flags]

common flags:
  --mode <dynastar|ssmr|dssmr>   replication scheme        [dynastar]
  --partitions <k>               number of partitions      [4]
  --clients <n>                  closed-loop clients       [8]
  --secs <s>                     simulated seconds to run  [60]
  --seed <n>                     master seed               [1]
  --max-batch <n>                commands per ordering batch  [1]
  --batch-delay <ms>             max wait to fill a batch     [0]
  --window <n>                   in-flight consensus instances per
                                 leader (0 = unbounded)       [0]
  --warm-plans <on|off>          oracle warm-start (incremental)
                                 repartitioning               [on]
  --warm-ratio <f>               warm-plan quality gate: accept while the
                                 warm cut stays within f x the last full
                                 multilevel cut               [1.1]
  --exec-workers <n>             modelled parallel execution workers per
                                 replica (conflict-aware P-SMR scheduler;
                                 1 = serial)                  [1]

chirper flags:
  --users <n>                    social graph size         [2000]
  --attach <m>                   Barabási–Albert attachment degree
                                 (follows per user)        [6]
  --posts <pct>                  post percentage (rest timeline) [15]
  --oracle-shards <o>            hash-sliced oracle shard groups
                                 (shard 0 plans; see DESIGN.md §7) [1]
  --cache <on|off>               client location caching; off sends
                                 every command through the oracle  [on]

tpcc flags:
  --warehouses <n>               warehouses (default = partitions)

scenario flags (adversarial robustness suite; always mode dynastar):
  --name <s>                     flash_crowd|diurnal|zipf_ramp|churn|
                                 chained_move|all                        [all]
  --staged <on|off>              chunked rate-limited state migration    [on]
  --users <n>                    social graph size (flash_crowd/churn)   [400]
  --domain <n>                   counters keyspace (diurnal/zipf_ramp/
                                 chained_move)                           [200]
  --waves <n>                    churn crash-restart waves               [2]
  --inflight-cap <n>             staged transfers in flight per
                                 source->destination link (0 = no cap)   [4]
";

/// Parses the shared batching flags. The cluster tick is 1 ms, so
/// `--batch-delay` in milliseconds maps 1:1 onto delay ticks.
fn parse_batch(a: &Args) -> Result<BatchConfig, String> {
    let max_batch: usize = a.num_or("max-batch", 1)?;
    if max_batch == 0 {
        return Err("--max-batch must be at least 1".into());
    }
    Ok(BatchConfig {
        max_batch,
        max_batch_delay_ticks: a.num_or("batch-delay", 0)?,
        window: a.num_or("window", 0)?,
    })
}

/// Parses the shared oracle warm-start flags into `(warm_plans, ratio)`.
fn parse_warm(a: &Args) -> Result<(bool, f64), String> {
    let warm = match a.str_or("warm-plans", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("--warm-plans {other:?}: expected on|off")),
    };
    let ratio: f64 = a.num_or("warm-ratio", 1.1)?;
    if ratio < 1.0 {
        return Err("--warm-ratio must be >= 1.0".into());
    }
    Ok((warm, ratio))
}

fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "dynastar" => Ok(Mode::Dynastar),
        "ssmr" => Ok(Mode::SSmr),
        "dssmr" => Ok(Mode::DsSmr),
        other => Err(format!("unknown mode {other:?} (dynastar|ssmr|dssmr)")),
    }
}

fn print_summary(metrics: &Metrics, secs: u64) {
    let done = metrics.counter(mn::CMD_COMPLETED);
    let multi = metrics.counter(mn::CMD_MULTI);
    let single = metrics.counter(mn::CMD_SINGLE);
    println!("commands completed : {done} ({:.0}/s)", done as f64 / secs as f64);
    println!(
        "multi-partition    : {multi} ({:.1}%)",
        100.0 * multi as f64 / (multi + single).max(1) as f64
    );
    println!("objects exchanged  : {}", metrics.counter(mn::OBJECTS_EXCHANGED));
    println!("client retries     : {}", metrics.counter(mn::CMD_RETRY));
    println!("oracle queries     : {}", metrics.counter(mn::ORACLE_QUERIES));
    let plans = metrics.counter(mn::PLANS_PUBLISHED);
    println!("repartitionings    : {plans}");
    if plans > 0 {
        println!("  warm-start plans : {}", metrics.counter(mn::PLANS_WARM));
    }
    let batches = metrics.counter(mn::BATCH_FLUSH_FULL) + metrics.counter(mn::BATCH_FLUSH_DELAY);
    if batches > 0 {
        println!(
            "ordering batches   : {batches} (mean {:.1} cmds/batch)",
            metrics.counter(mn::BATCH_COMMANDS) as f64 / batches as f64
        );
    }
    if let Some(h) = metrics.histogram(mn::CMD_LATENCY) {
        println!(
            "latency            : mean {}  p50 {}  p95 {}  p99 {}",
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }
}

fn run_chirper(a: &Args) -> Result<(), String> {
    let mode = parse_mode(&a.str_or("mode", "dynastar"))?;
    let partitions: u32 = a.num_or("partitions", 4)?;
    let clients: usize = a.num_or("clients", 8)?;
    let secs: u64 = a.num_or("secs", 60)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let users: usize = a.num_or("users", 2000)?;
    let posts: u32 = a.num_or("posts", 15)?;
    if posts > 100 {
        return Err("--posts must be <= 100".into());
    }
    let oracle_shards: u32 = a.num_or("oracle-shards", 1)?;
    if oracle_shards == 0 {
        return Err("--oracle-shards must be at least 1".into());
    }

    let mut setup = ChirperSetup::new(partitions, mode);
    setup.users = users;
    setup.follows_per_user = a.num_or("attach", 6)?;
    setup.seed = seed;
    setup.batch = parse_batch(a)?;
    (setup.warm_plans, setup.warm_quality_ratio) = parse_warm(a)?;
    setup.exec_workers = a.num_or("exec-workers", 1)?;
    setup.oracle_shards = oracle_shards;
    setup.client_location_cache = match a.str_or("cache", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("--cache {other:?}: expected on|off")),
    };
    let (mut cluster, graph) = chirper_cluster(&setup);
    let mix = ChirperMix { timeline: 100 - posts, post: posts, follow: 0, unfollow: 0 };
    for _ in 0..clients {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, mix));
    }
    eprintln!(
        "chirper: {users} users, {partitions} partitions, mode {mode}, {clients} clients, {secs}s..."
    );
    cluster.run_for(SimDuration::from_secs(secs));
    print_summary(cluster.metrics(), secs);
    Ok(())
}

fn run_tpcc(a: &Args) -> Result<(), String> {
    let mode = parse_mode(&a.str_or("mode", "dynastar"))?;
    let partitions: u32 = a.num_or("partitions", 4)?;
    let clients: usize = a.num_or("clients", 8)?;
    let secs: u64 = a.num_or("secs", 60)?;
    let seed: u64 = a.num_or("seed", 1)?;

    let mut setup = TpccSetup::new(partitions, mode);
    setup.scale.warehouses = a.num_or("warehouses", partitions)?;
    setup.seed = seed;
    setup.batch = parse_batch(a)?;
    (setup.warm_plans, setup.warm_quality_ratio) = parse_warm(a)?;
    setup.exec_workers = a.num_or("exec-workers", 1)?;
    if mode == Mode::Dynastar && a.has("warehouses") {
        setup.placement = Placement::Random; // interesting starting point
    }
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for i in 0..clients {
        let w = (i as u32) % setup.scale.warehouses;
        cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
    }
    eprintln!(
        "tpcc: {} warehouses, {partitions} partitions, mode {mode}, {clients} clients, {secs}s...",
        setup.scale.warehouses
    );
    cluster.run_for(SimDuration::from_secs(secs));
    print_summary(cluster.metrics(), secs);
    Ok(())
}

/// The counters application the keyspace scenarios drive (one variable
/// per locality key; commands add to every named variable).
struct Counters;
impl Application for Counters {
    type Op = i64;
    type Value = i64;
    type Reply = i64;
    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }
    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

/// Shared knobs for one adversarial-scenario run.
struct ScenarioOpts {
    partitions: u32,
    clients: usize,
    secs: u64,
    seed: u64,
    users: usize,
    domain: u64,
    waves: u32,
    staged: bool,
    inflight_cap: u32,
}

impl ScenarioOpts {
    /// The migration policy under test: both settings share the bandwidth
    /// model (8 KiB/var over 1 MiB/s); `staged` only changes *how* the
    /// transfer cost is paid.
    fn server(&self) -> ServerConfig {
        ServerConfig {
            staged_migration: self.staged,
            migration_chunk_vars: 4,
            migration_var_bytes: 8 * 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 6,
            migration_max_inflight_per_link: self.inflight_cap,
            ..ServerConfig::default()
        }
    }

    fn client_backoff(&self) -> SimDuration {
        if self.staged {
            SimDuration::from_millis(2)
        } else {
            SimDuration::ZERO
        }
    }
}

/// Flash-crowd / churn scenarios: the social network under a celebrity
/// post, optionally with crash waves + degraded links.
fn run_scenario_chirper(name: &str, churn: bool, o: &ScenarioOpts) {
    let mut setup = ChirperSetup::new(o.partitions, Mode::Dynastar);
    setup.users = o.users;
    setup.seed = o.seed;
    setup.min_plan_interval = SimDuration::from_secs((o.secs / 5).max(1));
    setup.repartition_threshold = 1_500;
    setup.server = o.server();
    setup.client_retry_backoff = o.client_backoff();
    let (mut cluster, graph) = chirper_cluster(&setup);
    let celebrity = {
        let g = graph.lock().unwrap();
        (0..g.users() as u64).min_by_key(|&u| g.followers_of(u).len()).unwrap_or(0)
    };
    let at = SimTime::from_secs(o.secs / 3);
    for _ in 0..o.clients {
        cluster.add_client(flash_crowd(
            Arc::clone(&graph),
            0.95,
            ChirperMix::MIX,
            celebrity,
            40,
            at,
        ));
    }
    if churn {
        let cfg = churn_nemesis(
            o.seed ^ 0xC0FFEE,
            SimTime::from_secs(o.secs / 4),
            SimTime::from_secs(o.secs * 3 / 4),
            o.waves,
        );
        let plan = NemesisPlan::generate(&cfg, cluster.groups());
        eprintln!(
            "{name}: nemesis schedules {} crash(es), {} degraded link(s)",
            plan.crash_count(),
            plan.link_fault_count()
        );
        plan.apply(&mut cluster.sim);
    }
    cluster.run_for(SimDuration::from_secs(o.secs));
    print_scenario_summary(name, cluster.metrics(), o);
}

/// Diurnal-rotation / Zipf-ramp scenarios: a counters keyspace whose
/// access pattern drifts under the partitioner's feet.
fn run_scenario_counters(name: &str, ramp: bool, o: &ScenarioOpts) {
    let config = ClusterConfig {
        partitions: o.partitions,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: o.seed,
        repartition_threshold: 800,
        min_plan_interval: SimDuration::from_secs((o.secs / 5).max(1)),
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(50),
        exec: ExecConfig::serial(SimDuration::from_micros(150)),
        server: o.server(),
        client_retry_backoff: o.client_backoff(),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..o.domain {
        b.place(LocKey(v), PartitionId((v % o.partitions as u64) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let domain = o.domain;
    let make = move |rank: u64, _rng: &mut StdRng| CommandKind::<Counters>::Access {
        op: 1,
        vars: vec![VarId(rank), VarId((rank + 1) % domain)],
    };
    for _ in 0..o.clients {
        if ramp {
            let pattern = ZipfRamp::new(
                domain,
                0.2,
                0.95,
                SimTime::from_secs(o.secs / 6),
                SimTime::from_secs(o.secs * 2 / 3),
            );
            cluster.add_client(ScenarioWorkload::new(pattern, make));
        } else {
            let pattern = DiurnalRotation::new(
                domain,
                0.95,
                SimDuration::from_secs((o.secs / 6).max(1)),
                domain / 4,
            );
            cluster.add_client(ScenarioWorkload::new(pattern, make));
        }
    }
    cluster.run_for(SimDuration::from_secs(o.secs));
    print_scenario_summary(name, cluster.metrics(), o);
}

/// Chained-migration scenario: the hot half of the counters keyspace
/// rotates once per plan interval (each plan re-routes the keys the
/// previous one just moved), while a mid-run brownout degrades every link
/// between partitions 0 and 1 until staged transfers give up and revert —
/// the reverts then compose with the chained moves via plan-history
/// replay.
fn run_scenario_chained(name: &str, o: &ScenarioOpts) {
    let plan_interval = SimDuration::from_secs((o.secs / 5).max(1));
    // At least three partitions: commands touching partition 2+ keep
    // flowing during the 0 ↔ 1 brownout, so the oracle keeps planning and
    // keeps pushing transfers across the degraded pair.
    let partitions = o.partitions.max(3);
    // Shorter retry ladder (~1.5 s at 100 ms timeout × 3 retries) so the
    // 2 s one-way brownout delay below outlasts it and forces give-ups.
    let mut server = o.server();
    server.migration_max_retries = 3;
    let config = ClusterConfig {
        partitions,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: o.seed,
        repartition_threshold: 800,
        min_plan_interval: plan_interval,
        warm_client_caches: true,
        compute_base: SimDuration::from_millis(50),
        exec: ExecConfig::serial(SimDuration::from_micros(150)),
        server,
        client_retry_backoff: o.client_backoff(),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    // Contiguous blocks + single-key commands: the foreground stays
    // single-partition (immune to the brownout), and migration pressure
    // comes from vertex-weight imbalance as the Zipf head rotates.
    for v in 0..o.domain {
        b.place(LocKey(v), PartitionId((v * partitions as u64 / o.domain) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let make = move |rank: u64, _rng: &mut StdRng| CommandKind::<Counters>::Access {
        op: 1,
        vars: vec![VarId(rank)],
    };
    for _ in 0..o.clients {
        let pattern = DiurnalRotation::new(o.domain, 0.95, plan_interval, o.domain / 2);
        cluster.add_client(ScenarioWorkload::new(pattern, make));
    }
    let (ga, gb) = {
        let groups = cluster.groups();
        (groups[0].clone(), groups[1].clone())
    };
    // Pure delay, zero loss: partial loss is laundered away by the 3×3
    // chunk/ack fan-out and total loss stalls the atomic-multicast
    // timestamp exchange, but a 2 s one-way delay puts chunk acks behind
    // the give-up point while every chunk still (eventually) arrives —
    // so `MigrationDone` and `MigrationRevert` race in the total order.
    let plan = migration_brownout(
        &ga,
        &gb,
        SimTime::from_secs(o.secs / 4),
        SimTime::from_secs(o.secs * 3 / 4),
        SimDuration::from_secs(2),
        0,
    );
    eprintln!("{name}: brownout degrades {} directed link(s)", plan.link_fault_count());
    plan.apply(&mut cluster.sim);
    cluster.run_for(SimDuration::from_secs(o.secs));
    print_scenario_summary(name, cluster.metrics(), o);
}

fn print_scenario_summary(name: &str, m: &Metrics, o: &ScenarioOpts) {
    println!("--- {name} ({}) ---", if o.staged { "staged" } else { "stall" });
    print_summary(m, o.secs);
    println!("client errors      : {}", m.counter(mn::CMD_FAILED));
    println!("retry backoffs     : {}", m.counter(mn::CMD_RETRY_BACKOFF));
    if o.staged {
        println!(
            "staged migration   : {} keys, {} chunks ({} retried), {} reverts",
            m.counter(mn::MIGRATION_KEYS_STAGED),
            m.counter(mn::MIGRATION_CHUNKS_SENT),
            m.counter(mn::MIGRATION_CHUNK_RETRIES),
            m.counter(mn::MIGRATION_REVERTS),
        );
        println!(
            "link scheduler     : {} deferred, {} released",
            m.counter(mn::MIGRATION_DEFERRED),
            m.counter(mn::MIGRATION_RELEASED),
        );
    }
}

fn run_scenario(a: &Args) -> Result<(), String> {
    let name = a.str_or("name", "all");
    let o = ScenarioOpts {
        partitions: a.num_or("partitions", 2)?,
        clients: a.num_or("clients", 3)?,
        secs: a.num_or("secs", 24)?,
        seed: a.num_or("seed", 9)?,
        users: a.num_or("users", 400)?,
        domain: a.num_or("domain", 200)?,
        waves: a.num_or("waves", 2)?,
        staged: match a.str_or("staged", "on").as_str() {
            "on" => true,
            "off" => false,
            other => return Err(format!("--staged {other:?}: expected on|off")),
        },
        inflight_cap: a.num_or("inflight-cap", 4)?,
    };
    let all = ["flash_crowd", "diurnal", "zipf_ramp", "churn", "chained_move"];
    let selected: Vec<&str> = match name.as_str() {
        "all" => all.to_vec(),
        one if all.contains(&one) => vec![one],
        other => {
            return Err(format!(
                "unknown scenario {other:?} \
                 (flash_crowd|diurnal|zipf_ramp|churn|chained_move|all)"
            ))
        }
    };
    for s in selected {
        // `chained_move` needs a partition outside the browned-out pair.
        let parts = if s == "chained_move" { o.partitions.max(3) } else { o.partitions };
        eprintln!(
            "scenario {s}: {} partitions, {} clients, {}s, staged={}...",
            parts, o.clients, o.secs, o.staged
        );
        match s {
            "flash_crowd" => run_scenario_chirper(s, false, &o),
            "churn" => run_scenario_chirper(s, true, &o),
            "diurnal" => run_scenario_counters(s, false, &o),
            "zipf_ramp" => run_scenario_counters(s, true, &o),
            "chained_move" => run_scenario_chained(s, &o),
            other => unreachable!("unknown scenario {other}"),
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_deref() {
        Some("chirper") => run_chirper(&parsed),
        Some("tpcc") => run_tpcc(&parsed),
        Some("scenario") => run_scenario(&parsed),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}
