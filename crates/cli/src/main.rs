//! `dynastar` — run DynaStar simulation scenarios from the command line.
//!
//! ```text
//! dynastar chirper --partitions 4 --mode dynastar --users 2000 --clients 8 --secs 60
//! dynastar tpcc    --partitions 4 --mode ssmr     --clients 8 --secs 60
//! ```
//!
//! Modes: `dynastar` (default), `ssmr` (S-SMR\* with optimized static
//! placement), `dssmr`. All runs are deterministic in `--seed`.

#![forbid(unsafe_code)]

mod args;

use std::sync::Arc;

use args::Args;
use dynastar_bench::setup::{chirper_cluster, tpcc_cluster, ChirperSetup, Placement, TpccSetup};
use dynastar_core::metric_names as mn;
use dynastar_core::{BatchConfig, Mode};
use dynastar_runtime::{Metrics, SimDuration};
use dynastar_workloads::chirper::{ChirperMix, ChirperWorkload};
use dynastar_workloads::tpcc::{self, TpccWorkload};

const USAGE: &str = "\
usage: dynastar <chirper|tpcc> [flags]

common flags:
  --mode <dynastar|ssmr|dssmr>   replication scheme        [dynastar]
  --partitions <k>               number of partitions      [4]
  --clients <n>                  closed-loop clients       [8]
  --secs <s>                     simulated seconds to run  [60]
  --seed <n>                     master seed               [1]
  --max-batch <n>                commands per ordering batch  [1]
  --batch-delay <ms>             max wait to fill a batch     [0]
  --window <n>                   in-flight consensus instances per
                                 leader (0 = unbounded)       [0]
  --warm-plans <on|off>          oracle warm-start (incremental)
                                 repartitioning               [on]
  --warm-ratio <f>               warm-plan quality gate: accept while the
                                 warm cut stays within f x the last full
                                 multilevel cut               [1.1]

chirper flags:
  --users <n>                    social graph size         [2000]
  --posts <pct>                  post percentage (rest timeline) [15]

tpcc flags:
  --warehouses <n>               warehouses (default = partitions)
";

/// Parses the shared batching flags. The cluster tick is 1 ms, so
/// `--batch-delay` in milliseconds maps 1:1 onto delay ticks.
fn parse_batch(a: &Args) -> Result<BatchConfig, String> {
    let max_batch: usize = a.num_or("max-batch", 1)?;
    if max_batch == 0 {
        return Err("--max-batch must be at least 1".into());
    }
    Ok(BatchConfig {
        max_batch,
        max_batch_delay_ticks: a.num_or("batch-delay", 0)?,
        window: a.num_or("window", 0)?,
    })
}

/// Parses the shared oracle warm-start flags into `(warm_plans, ratio)`.
fn parse_warm(a: &Args) -> Result<(bool, f64), String> {
    let warm = match a.str_or("warm-plans", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("--warm-plans {other:?}: expected on|off")),
    };
    let ratio: f64 = a.num_or("warm-ratio", 1.1)?;
    if ratio < 1.0 {
        return Err("--warm-ratio must be >= 1.0".into());
    }
    Ok((warm, ratio))
}

fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "dynastar" => Ok(Mode::Dynastar),
        "ssmr" => Ok(Mode::SSmr),
        "dssmr" => Ok(Mode::DsSmr),
        other => Err(format!("unknown mode {other:?} (dynastar|ssmr|dssmr)")),
    }
}

fn print_summary(metrics: &Metrics, secs: u64) {
    let done = metrics.counter(mn::CMD_COMPLETED);
    let multi = metrics.counter(mn::CMD_MULTI);
    let single = metrics.counter(mn::CMD_SINGLE);
    println!("commands completed : {done} ({:.0}/s)", done as f64 / secs as f64);
    println!(
        "multi-partition    : {multi} ({:.1}%)",
        100.0 * multi as f64 / (multi + single).max(1) as f64
    );
    println!("objects exchanged  : {}", metrics.counter(mn::OBJECTS_EXCHANGED));
    println!("client retries     : {}", metrics.counter(mn::CMD_RETRY));
    println!("oracle queries     : {}", metrics.counter(mn::ORACLE_QUERIES));
    let plans = metrics.counter(mn::PLANS_PUBLISHED);
    println!("repartitionings    : {plans}");
    if plans > 0 {
        println!("  warm-start plans : {}", metrics.counter(mn::PLANS_WARM));
    }
    let batches = metrics.counter(mn::BATCH_FLUSH_FULL) + metrics.counter(mn::BATCH_FLUSH_DELAY);
    if batches > 0 {
        println!(
            "ordering batches   : {batches} (mean {:.1} cmds/batch)",
            metrics.counter(mn::BATCH_COMMANDS) as f64 / batches as f64
        );
    }
    if let Some(h) = metrics.histogram(mn::CMD_LATENCY) {
        println!(
            "latency            : mean {}  p50 {}  p95 {}  p99 {}",
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }
}

fn run_chirper(a: &Args) -> Result<(), String> {
    let mode = parse_mode(&a.str_or("mode", "dynastar"))?;
    let partitions: u32 = a.num_or("partitions", 4)?;
    let clients: usize = a.num_or("clients", 8)?;
    let secs: u64 = a.num_or("secs", 60)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let users: usize = a.num_or("users", 2000)?;
    let posts: u32 = a.num_or("posts", 15)?;
    if posts > 100 {
        return Err("--posts must be <= 100".into());
    }

    let mut setup = ChirperSetup::new(partitions, mode);
    setup.users = users;
    setup.seed = seed;
    setup.batch = parse_batch(a)?;
    (setup.warm_plans, setup.warm_quality_ratio) = parse_warm(a)?;
    let (mut cluster, graph) = chirper_cluster(&setup);
    let mix = ChirperMix { timeline: 100 - posts, post: posts, follow: 0, unfollow: 0 };
    for _ in 0..clients {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&graph), 0.95, mix));
    }
    eprintln!(
        "chirper: {users} users, {partitions} partitions, mode {mode}, {clients} clients, {secs}s..."
    );
    cluster.run_for(SimDuration::from_secs(secs));
    print_summary(cluster.metrics(), secs);
    Ok(())
}

fn run_tpcc(a: &Args) -> Result<(), String> {
    let mode = parse_mode(&a.str_or("mode", "dynastar"))?;
    let partitions: u32 = a.num_or("partitions", 4)?;
    let clients: usize = a.num_or("clients", 8)?;
    let secs: u64 = a.num_or("secs", 60)?;
    let seed: u64 = a.num_or("seed", 1)?;

    let mut setup = TpccSetup::new(partitions, mode);
    setup.scale.warehouses = a.num_or("warehouses", partitions)?;
    setup.seed = seed;
    setup.batch = parse_batch(a)?;
    (setup.warm_plans, setup.warm_quality_ratio) = parse_warm(a)?;
    if mode == Mode::Dynastar && a.has("warehouses") {
        setup.placement = Placement::Random; // interesting starting point
    }
    let mut cluster = tpcc_cluster(&setup);
    let tracker = tpcc::order_tracker();
    for i in 0..clients {
        let w = (i as u32) % setup.scale.warehouses;
        cluster.add_client(TpccWorkload::new(setup.scale, w, Arc::clone(&tracker)));
    }
    eprintln!(
        "tpcc: {} warehouses, {partitions} partitions, mode {mode}, {clients} clients, {secs}s...",
        setup.scale.warehouses
    );
    cluster.run_for(SimDuration::from_secs(secs));
    print_summary(cluster.metrics(), secs);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_deref() {
        Some("chirper") => run_chirper(&parsed),
        Some("tpcc") => run_tpcc(&parsed),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}
