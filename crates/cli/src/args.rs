//! Minimal flag parsing (no external dependency).

use std::collections::HashMap;

/// Parsed `--key value` flags plus the leading subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token (subcommand), if any.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for a dangling `--flag` with no value or an
    /// unexpected extra positional.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
                out.flags.insert(name.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(format!("unexpected positional argument {tok:?}"));
            }
        }
        Ok(out)
    }

    /// A string flag, or `default` when absent.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.flags.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A numeric flag, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
        }
    }

    /// Whether a flag was supplied at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = parse(&["chirper", "--partitions", "4", "--mode", "ssmr"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("chirper"));
        assert_eq!(a.num_or("partitions", 1u32).unwrap(), 4);
        assert_eq!(a.str_or("mode", "dynastar"), "ssmr");
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
        assert!(a.has("mode"));
        assert!(!a.has("seed"));
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(parse(&["tpcc", "--partitions"]).is_err());
    }

    #[test]
    fn rejects_extra_positional() {
        assert!(parse(&["tpcc", "extra"]).is_err());
    }

    #[test]
    fn reports_bad_numbers() {
        let a = parse(&["tpcc", "--partitions", "many"]).unwrap();
        assert!(a.num_or("partitions", 1u32).is_err());
    }
}
