//! Quickstart: a replicated key-value counter service on DynaStar.
//!
//! Shows the minimal steps a downstream user takes:
//! 1. implement [`Application`] (deterministic execution over declared vars),
//! 2. build a cluster (partitions + oracle, all simulated),
//! 3. drive it with a workload and read the metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar::runtime::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// A bank of named counters. Each counter is one variable and one
/// locality key.
struct Counters;

#[derive(Debug, Clone)]
enum Op {
    /// Add an amount to every declared counter.
    Add(i64),
    /// Read the declared counters.
    Read,
}

impl Application for Counters {
    type Op = Op;
    type Value = i64;
    type Reply = Vec<(VarId, i64)>;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn execute(op: &Op, vars: &mut BTreeMap<VarId, Option<i64>>) -> Self::Reply {
        match op {
            Op::Add(n) => vars
                .iter_mut()
                .map(|(&v, val)| {
                    let next = val.unwrap_or(0) + n;
                    *val = Some(next);
                    (v, next)
                })
                .collect(),
            Op::Read => vars.iter().map(|(&v, val)| (v, val.unwrap_or(0))).collect(),
        }
    }
}

/// A workload that increments random counters, sometimes two at once
/// (those become multi-partition commands when the counters live apart).
struct RandomIncrements {
    counters: u64,
    remaining: u32,
    done_log: Arc<Mutex<u32>>,
}

impl Workload<Counters> for RandomIncrements {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Counters>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let a = VarId(rng.gen_range(0..self.counters));
        if rng.gen_bool(0.2) {
            let b = VarId(rng.gen_range(0..self.counters));
            Some(CommandKind::Access { op: Op::Add(1), vars: vec![a, b] })
        } else if rng.gen_bool(0.1) {
            Some(CommandKind::Access { op: Op::Read, vars: vec![a] })
        } else {
            Some(CommandKind::Access { op: Op::Add(1), vars: vec![a] })
        }
    }

    fn on_completed(
        &mut self,
        _now: SimTime,
        _cmd: &Command<Counters>,
        reply: Option<&Vec<(VarId, i64)>>,
    ) {
        if reply.is_some() {
            *self.done_log.lock().unwrap() += 1;
        }
    }
}

fn main() {
    const COUNTERS: u64 = 100;
    const PARTITIONS: u32 = 2;

    // 2 partitions + the oracle, 3 replicas each, DynaStar mode.
    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 42,
        repartition_threshold: 500, // repartition eagerly for the demo
        ..ClusterConfig::default()
    };
    let mut builder = ClusterBuilder::new(config);
    for c in 0..COUNTERS {
        builder.place(LocKey(c), PartitionId((c % PARTITIONS as u64) as u32));
        builder.with_var(VarId(c), 0);
    }
    let mut cluster = builder.build();

    let done = Arc::new(Mutex::new(0));
    for _ in 0..4 {
        cluster.add_client(RandomIncrements {
            counters: COUNTERS,
            remaining: 500,
            done_log: Arc::clone(&done),
        });
    }

    println!(
        "running 4 clients x 500 increments over {COUNTERS} counters on {PARTITIONS} partitions..."
    );
    cluster.run_for(SimDuration::from_secs(60));

    let m = cluster.metrics();
    println!("completed commands : {}", m.counter(mn::CMD_COMPLETED));
    println!("single-partition   : {}", m.counter(mn::CMD_SINGLE));
    println!("multi-partition    : {}", m.counter(mn::CMD_MULTI));
    println!("objects exchanged  : {}", m.counter(mn::OBJECTS_EXCHANGED));
    println!("repartitionings    : {}", m.counter(mn::PLANS_PUBLISHED));
    println!("client retries     : {}", m.counter(mn::CMD_RETRY));
    if let Some(h) = m.histogram(mn::CMD_LATENCY) {
        println!("latency            : mean {}  p95 {}", h.mean(), h.quantile(0.95));
    }
    assert_eq!(*done.lock().unwrap(), 2000, "all commands should complete");
    println!("\nok: all 2000 commands completed with linearizable semantics.");
}
