//! Failover demo: DynaStar keeps executing through replica crashes.
//!
//! Crashes one replica of a partition group and one oracle replica
//! mid-run (a minority of each Paxos group); Multi-Paxos elects new
//! leaders and the service continues without losing commands.
//!
//! Run with: `cargo run --release --example failover_demo`

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::{
    Application, ClusterBuilder, ClusterConfig, Command, CommandKind, LocKey, Mode, PartitionId,
    VarId, Workload,
};
use dynastar::runtime::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// A single-register-per-key store.
struct Registers;

impl Application for Registers {
    type Op = i64; // add
    type Value = i64;
    type Reply = i64;

    fn locality(var: VarId) -> LocKey {
        LocKey(var.0)
    }

    fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
        let mut last = 0;
        for v in vars.values_mut() {
            last = v.unwrap_or(0) + op;
            *v = Some(last);
        }
        last
    }
}

struct Increments {
    vars: u64,
    remaining: u32,
    completed: Arc<Mutex<u32>>,
}

impl Workload<Registers> for Increments {
    fn next_command(&mut self, _now: SimTime, rng: &mut StdRng) -> Option<CommandKind<Registers>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let v = VarId(rng.gen_range(0..self.vars));
        Some(CommandKind::Access { op: 1, vars: vec![v] })
    }

    fn on_completed(&mut self, _now: SimTime, _cmd: &Command<Registers>, reply: Option<&i64>) {
        if reply.is_some() {
            *self.completed.lock().unwrap() += 1;
        }
    }
}

fn main() {
    const VARS: u64 = 50;
    const PARTITIONS: u32 = 2;
    const REPLICAS: usize = 3;

    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: REPLICAS,
        mode: Mode::Dynastar,
        seed: 99,
        repartition_threshold: u64::MAX,
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(2),
        ..ClusterConfig::default()
    };
    let mut builder = ClusterBuilder::new(config);
    for v in 0..VARS {
        builder.place(LocKey(v), PartitionId((v % PARTITIONS as u64) as u32));
        builder.with_var(VarId(v), 0);
    }
    let mut cluster = builder.build();

    let completed = Arc::new(Mutex::new(0));
    for _ in 0..4 {
        cluster.add_client(Increments {
            vars: VARS,
            remaining: 500,
            completed: Arc::clone(&completed),
        });
    }

    // Node layout: partitions 0..k get replicas first, then the oracle
    // group. Crash replica 0 of partition 0 (its initial Paxos leader!)
    // at t=2s and one oracle replica at t=4s.
    let partition0_leader = NodeId::from_raw(0);
    let oracle_replica = NodeId::from_raw((PARTITIONS as usize * REPLICAS) as u32 + 1);
    cluster.sim.schedule_crash(SimTime::from_secs(2), partition0_leader);
    cluster.sim.schedule_crash(SimTime::from_secs(4), oracle_replica);

    println!("running 4 clients x 500 increments; crashing P0's leader at t=2s and an oracle replica at t=4s...");
    cluster.run_for(SimDuration::from_secs(120));

    let done = *completed.lock().unwrap();
    let m = cluster.metrics();
    println!("commands completed : {done} / 2000");
    println!("client retries     : {}", m.counter(mn::CMD_RETRY));
    if let Some(h) = m.histogram(mn::CMD_LATENCY) {
        println!(
            "latency            : mean {}  p95 {}  max {}",
            h.mean(),
            h.quantile(0.95),
            h.max()
        );
    }
    assert_eq!(done, 2000, "crashes of a minority must not lose commands");
    println!("\nok: leader election + catch-up recovered both groups; no command lost.");
}
