//! Chirper demo: the paper's social-network service end to end.
//!
//! Builds a power-law follow graph, deploys it over 4 partitions with a
//! random initial placement, runs a mixed timeline/post workload, and
//! shows DynaStar repartitioning colocating users with their followers.
//!
//! Run with: `cargo run --release --example chirper_demo`

use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::{ClusterBuilder, ClusterConfig, Mode};
use dynastar::runtime::SimDuration;
use dynastar::workloads::chirper::{Chirper, ChirperMix, ChirperUser, ChirperWorkload};
use dynastar::workloads::placement;
use dynastar::workloads::socialgraph::SocialGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const USERS: usize = 1_000;
    const PARTITIONS: u32 = 4;

    let mut rng = StdRng::seed_from_u64(7);
    let graph = SocialGraph::barabasi_albert(USERS, 6, &mut rng);
    let celebrity = graph.most_followed().unwrap();
    println!(
        "social graph: {} users, {} follow edges; most followed user {} has {} followers",
        graph.users(),
        graph.edges(),
        celebrity,
        graph.followers_of(celebrity).len()
    );

    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 7,
        repartition_threshold: 2_000,
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let mut builder = ClusterBuilder::new(config);
    let keys = (0..USERS as u64).map(Chirper::key);
    for (k, p) in placement::random(keys, PARTITIONS, &mut rng) {
        builder.place(k, p);
    }
    builder.with_vars((0..USERS as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), std::sync::Arc::new(user))
    }));
    let mut cluster = builder.build();

    let shared = Arc::new(Mutex::new(graph));
    for _ in 0..8 {
        cluster.add_client(
            ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX).with_budget(400),
        );
    }

    println!("running 8 clients x 400 commands (85% timeline / 15% post), random placement...");
    // Report in 3 windows so the repartitioning effect is visible.
    for window in 0..3 {
        cluster.run_for(SimDuration::from_secs(20));
        let m = cluster.metrics();
        let multi = m.counter(mn::CMD_MULTI);
        let single = m.counter(mn::CMD_SINGLE);
        println!(
            "t={:>3}s  completed={}  %multi-partition={:.1}%  plans={}  objects moved={}",
            (window + 1) * 20,
            m.counter(mn::CMD_COMPLETED),
            100.0 * multi as f64 / (multi + single).max(1) as f64,
            m.counter(mn::PLANS_PUBLISHED),
            m.counter(mn::OBJECTS_EXCHANGED),
        );
    }
    let m = cluster.metrics();
    assert_eq!(m.counter(mn::CMD_COMPLETED), 8 * 400);
    if let Some(h) = m.histogram(mn::CMD_LATENCY) {
        println!("latency: mean {}  p95 {}", h.mean(), h.quantile(0.95));
    }
    println!(
        "done: repartitioning colocated users with their followers, cutting multi-partition posts."
    );
}
