//! TPC-C demo: the order-processing benchmark on DynaStar.
//!
//! Two warehouses on two partitions, warehouse-aligned placement, the
//! standard 45/43/4/4/4 transaction mix. Remote payments and remote order
//! lines (the spec's 15% / 1%) become multi-partition commands that
//! DynaStar executes by borrowing rows.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use std::sync::Arc;

use dynastar::core::metric_names as mn;
use dynastar::core::{ClusterBuilder, ClusterConfig, Mode, PartitionId};
use dynastar::runtime::SimDuration;
use dynastar::workloads::tpcc::{self, TpccScale, TpccWorkload};

fn main() {
    let scale = TpccScale { warehouses: 2, customers_per_district: 30, items: 100 };
    const PARTITIONS: u32 = 2;

    let config = ClusterConfig {
        partitions: PARTITIONS,
        replicas: 3,
        mode: Mode::Dynastar,
        seed: 5,
        repartition_threshold: u64::MAX, // aligned placement is already good
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let mut builder = ClusterBuilder::new(config);
    for key in tpcc::keys(&scale) {
        let w = if key.0 >= (1 << 40) {
            (key.0 - (1 << 40)) as u32
        } else {
            (key.0 / tpcc::DISTRICTS_PER_WAREHOUSE as u64) as u32
        };
        builder.place(key, PartitionId(w % PARTITIONS));
    }
    builder.with_vars(tpcc::rows(&scale));
    let mut cluster = builder.build();

    let tracker = tpcc::order_tracker();
    for w in 0..scale.warehouses {
        for _ in 0..3 {
            cluster.add_client(TpccWorkload::new(scale, w, Arc::clone(&tracker)).with_budget(300));
        }
    }

    println!("running 6 TPC-C terminals x 300 transactions on 2 warehouses / 2 partitions...");
    cluster.run_for(SimDuration::from_secs(120));

    let m = cluster.metrics();
    let done = m.counter(mn::CMD_COMPLETED);
    let multi = m.counter(mn::CMD_MULTI);
    let single = m.counter(mn::CMD_SINGLE);
    println!("transactions completed : {done}");
    println!(
        "multi-partition        : {multi} ({:.1}%)",
        100.0 * multi as f64 / (multi + single).max(1) as f64
    );
    println!("objects exchanged      : {}", m.counter(mn::OBJECTS_EXCHANGED));
    if let Some(h) = m.histogram(mn::CMD_LATENCY) {
        println!("latency                : mean {}  p95 {}", h.mean(), h.quantile(0.95));
    }
    assert_eq!(done, 1800, "all transactions should complete");
    println!("\nok: remote payments/order-lines executed as borrow-execute-return commands.");
}
