//! Whole-stack determinism: identical seeds must give bit-identical
//! executions (event counts, metrics), and different seeds must diverge.
//! Determinism is what makes every EXPERIMENTS.md number reproducible.

use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::Mode;
use dynastar::runtime::SimDuration;
use dynastar::workloads::chirper::{ChirperMix, ChirperWorkload};
use dynastar::workloads::socialgraph::SocialGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(seed: u64) -> (u64, u64, u64, u64) {
    use dynastar::core::{ClusterBuilder, ClusterConfig, PartitionId};
    use dynastar::workloads::chirper::{Chirper, ChirperUser};
    use dynastar::workloads::placement;

    let mut rng = StdRng::seed_from_u64(99);
    let graph = SocialGraph::barabasi_albert(150, 3, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 2,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 300,
        min_plan_interval: SimDuration::from_secs(2),
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let mut seed_rng = StdRng::seed_from_u64(7);
    let map = placement::random(keys, 2, &mut seed_rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    for _ in 0..4 {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX));
    }
    cluster.run_for(SimDuration::from_secs(15));
    (
        cluster.sim.events_processed(),
        cluster.metrics().counter(mn::CMD_COMPLETED),
        cluster.metrics().counter(mn::CMD_MULTI),
        cluster.metrics().counter(mn::OBJECTS_EXCHANGED),
    )
}

#[test]
fn identical_seeds_give_identical_executions() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay the identical execution");
    assert!(a.1 > 0, "the run must actually do work");
}

#[test]
fn different_seeds_diverge() {
    let a = run(1);
    let b = run(2);
    // Event counts are extremely unlikely to collide across seeds.
    assert_ne!(a.0, b.0, "different seeds should schedule differently");
}
