//! Whole-stack determinism: identical seeds must give bit-identical
//! executions (event counts, metrics), and different seeds must diverge.
//! Determinism is what makes every EXPERIMENTS.md number reproducible.

use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::Mode;
use dynastar::runtime::SimDuration;
use dynastar::workloads::chirper::{ChirperMix, ChirperWorkload};
use dynastar::workloads::socialgraph::SocialGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(seed: u64) -> (u64, u64, u64, u64) {
    use dynastar::core::{ClusterBuilder, ClusterConfig, PartitionId};
    use dynastar::workloads::chirper::{Chirper, ChirperUser};
    use dynastar::workloads::placement;

    let mut rng = StdRng::seed_from_u64(99);
    let graph = SocialGraph::barabasi_albert(150, 3, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 2,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 300,
        min_plan_interval: SimDuration::from_secs(2),
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let mut seed_rng = StdRng::seed_from_u64(7);
    let map = placement::random(keys, 2, &mut seed_rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    for _ in 0..4 {
        cluster.add_client(ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX));
    }
    cluster.run_for(SimDuration::from_secs(15));
    (
        cluster.sim.events_processed(),
        cluster.metrics().counter(mn::CMD_COMPLETED),
        cluster.metrics().counter(mn::CMD_MULTI),
        cluster.metrics().counter(mn::OBJECTS_EXCHANGED),
    )
}

#[test]
fn identical_seeds_give_identical_executions() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay the identical execution");
    assert!(a.1 > 0, "the run must actually do work");
}

#[test]
fn different_seeds_diverge() {
    let a = run(1);
    let b = run(2);
    // Event counts are extremely unlikely to collide across seeds.
    assert_ne!(a.0, b.0, "different seeds should schedule differently");
}

// ---------------------------------------------------------------------------
// Golden delivered-command hash.
//
// The counters above can collide in principle; the tests below pin the
// *full* delivered-command sequence — every completion's command id,
// completion time and reply — into one FNV-1a hash. Any change to event
// ordering (a scheduler swap, a fan-out rewrite, an errant HashMap
// iteration) shifts some completion and changes the hash.
// ---------------------------------------------------------------------------

/// Running FNV-1a digest + completion count, shared with the recorder.
#[derive(Debug)]
struct GoldenLog {
    hash: u64,
    count: u64,
}

impl GoldenLog {
    fn new() -> Self {
        GoldenLog { hash: 0xcbf2_9ce4_8422_2325, count: 0 }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Wraps any workload, folding each completion the cluster reports into a
/// shared [`GoldenLog`] before delegating. The wrapper is driven by the
/// same `on_completed` calls the real workload sees, so the hash covers
/// exactly the delivered-command sequence in delivery order.
struct Recording<A: dynastar::core::Application, W> {
    inner: W,
    log: Arc<Mutex<GoldenLog>>,
    _app: std::marker::PhantomData<fn() -> A>,
}

impl<A, W> dynastar::core::Workload<A> for Recording<A, W>
where
    A: dynastar::core::Application,
    A::Reply: std::fmt::Debug,
    W: dynastar::core::Workload<A>,
{
    fn next_command(
        &mut self,
        now: dynastar::runtime::SimTime,
        rng: &mut StdRng,
    ) -> Option<dynastar::core::CommandKind<A>> {
        self.inner.next_command(now, rng)
    }

    fn on_completed(
        &mut self,
        now: dynastar::runtime::SimTime,
        cmd: &dynastar::core::Command<A>,
        reply: Option<&A::Reply>,
    ) {
        let mut log = self.log.lock().expect("golden log");
        log.count += 1;
        log.absorb(&cmd.id.origin.to_le_bytes());
        log.absorb(&cmd.id.seq.to_le_bytes());
        log.absorb(&now.as_micros().to_le_bytes());
        match reply {
            // Debug formatting is stable across build profiles, which is
            // all the cross-profile golden constant needs.
            Some(r) => log.absorb(format!("{r:?}").as_bytes()),
            None => log.absorb(b"-"),
        }
        self.inner.on_completed(now, cmd, reply);
    }
}

/// The `run` scenario with every client's completions recorded; returns
/// `(hash, completions)`.
fn run_golden(seed: u64) -> (u64, u64) {
    run_sharded_golden(seed, 1)
}

/// [`run_golden`] with the oracle deployed as `shards` hash-sliced
/// replicated groups (shard 0 the planner); returns `(hash, completions)`.
/// With one shard this is byte-identical to the pre-sharding deployment.
fn run_sharded_golden(seed: u64, shards: u32) -> (u64, u64) {
    use dynastar::core::{ClusterBuilder, ClusterConfig, PartitionId};
    use dynastar::workloads::chirper::{Chirper, ChirperUser};
    use dynastar::workloads::placement;

    let mut rng = StdRng::seed_from_u64(99);
    let graph = SocialGraph::barabasi_albert(150, 3, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 2,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 300,
        min_plan_interval: SimDuration::from_secs(2),
        warm_client_caches: true,
        oracle_shards: shards,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let mut seed_rng = StdRng::seed_from_u64(7);
    let map = placement::random(keys, 2, &mut seed_rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    let log = Arc::new(Mutex::new(GoldenLog::new()));
    for _ in 0..4 {
        cluster.add_client(Recording {
            inner: ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX),
            log: Arc::clone(&log),
            _app: std::marker::PhantomData,
        });
    }
    cluster.run_for(SimDuration::from_secs(15));
    let log = log.lock().expect("golden log");
    (log.hash, log.count)
}

/// The delivered-command hash for seed 42, recorded from a verified run.
///
/// The same constant must hold in debug and release builds (the CI test
/// job runs both), and held on the pre-overhaul scheduler (global binary
/// heap, string-keyed metrics, per-recipient deep-copy fan-out) — the
/// hot-path rewrites changed wall-clock, not one delivered command.
/// A legitimate protocol change that reorders deliveries should update
/// this constant in the same commit, with the reason in the message.
///
/// Re-pinned for the partitioner overhaul: `refine` now implements the
/// documented lighter-part tiebreak and processes boundary worklists
/// instead of full sweeps, so plans place some keys differently (same
/// quality bounds) and the delivered sequence shifts. Verified identical
/// across two debug runs and a release run of that revision.
///
/// Re-pinned for the recompute-marker agreement: oracle replicas now
/// propose a totally-ordered `Recompute` marker and start the plan
/// compute at its delivery position instead of acting on replica-local
/// recompute gates (which could diverge across replicas and split the
/// published plan — see DESIGN.md). The extra marker round shifts every
/// plan's timing, and with it the delivered sequence. Verified identical
/// across debug and release runs of this revision.
const GOLDEN_SEED: u64 = 42;
const GOLDEN_HASH: u64 = 0x6c8e_36b5_9194_7ed1;
const GOLDEN_COUNT: u64 = 22463;

#[test]
fn delivered_sequence_matches_golden_hash() {
    let (hash, count) = run_golden(GOLDEN_SEED);
    assert_eq!(count, GOLDEN_COUNT, "completion count drifted from the recorded golden execution");
    assert_eq!(
        hash, GOLDEN_HASH,
        "delivered-command sequence drifted from the recorded golden execution \
         (hash {hash:#018x}); if a deliberate protocol change reordered \
         deliveries, re-record the constant in this commit"
    );
}

// ---------------------------------------------------------------------------
// Sharded-oracle golden: the same scenario with four oracle shards.
//
// Sharding moves query serving onto four independent replicated groups
// (shard 0 doubling as the planner), splits each server's hint flush into
// per-shard slices, and routes cold-cache queries by `exec_shard`. All of
// that legitimately reorders deliveries relative to the single-shard
// golden, so O=4 gets its own pinned constant; the O=1 constants above
// staying untouched is the proof that a single shard still resolves to
// the pre-sharding protocol byte for byte.
// ---------------------------------------------------------------------------

/// Recorded from a verified run of this revision; identical in debug and
/// release builds. Re-record alongside [`GOLDEN_HASH`] when a deliberate
/// protocol change reorders deliveries.
const SHARDED_GOLDEN_SEED: u64 = 42;
const SHARDED_GOLDEN_HASH: u64 = 0x50f5_a535_a711_2eac;
const SHARDED_GOLDEN_COUNT: u64 = 23709;

#[test]
fn four_shard_oracle_matches_golden_hash() {
    let (hash, count) = run_sharded_golden(SHARDED_GOLDEN_SEED, 4);
    assert_eq!(
        count, SHARDED_GOLDEN_COUNT,
        "completion count drifted from the recorded four-shard execution"
    );
    assert_eq!(
        hash, SHARDED_GOLDEN_HASH,
        "four-shard delivered sequence drifted (hash {hash:#018x}); if a \
         deliberate protocol change reordered deliveries, re-record the \
         constant in this commit"
    );
}

// ---------------------------------------------------------------------------
// Scenario-suite golden: churn + flash crowd under staged migration.
//
// The adversarial path exercises everything the plain golden does not:
// celebrity-post hot-spot concentration, a synchronized crash wave with a
// degraded link mid-run, chunked rate-limited state migration with ack
// timeouts, and client retry backpressure. Pinning its delivered-command
// hash keeps the whole robustness stack deterministic, not just the happy
// path.
// ---------------------------------------------------------------------------

/// Flash-crowd Chirper traffic + one crash wave + staged migration;
/// returns `(hash, completions, client_visible_errors)`.
fn run_scenario_golden(seed: u64) -> (u64, u64, u64) {
    use dynastar::core::server::ServerConfig;
    use dynastar::core::{ClusterBuilder, ClusterConfig, PartitionId};
    use dynastar::runtime::nemesis::NemesisPlan;
    use dynastar::runtime::SimTime;
    use dynastar::workloads::chirper::{Chirper, ChirperUser};
    use dynastar::workloads::placement;
    use dynastar::workloads::scenarios::{churn_nemesis, flash_crowd};

    let mut rng = StdRng::seed_from_u64(99);
    let graph = SocialGraph::barabasi_albert(150, 3, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 3,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 300,
        min_plan_interval: SimDuration::from_secs(2),
        warm_client_caches: true,
        client_timeout: SimDuration::from_secs(3),
        client_retry_backoff: SimDuration::from_millis(2),
        server: ServerConfig {
            staged_migration: true,
            migration_chunk_vars: 4,
            migration_var_bytes: 8 * 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 6,
            ..ServerConfig::default()
        },
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let mut seed_rng = StdRng::seed_from_u64(7);
    let map = placement::random(keys, 2, &mut seed_rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    let log = Arc::new(Mutex::new(GoldenLog::new()));
    for _ in 0..4 {
        cluster.add_client(Recording {
            inner: flash_crowd(
                Arc::clone(&shared),
                0.95,
                ChirperMix::MIX,
                0,
                40,
                SimTime::from_secs(4),
            ),
            log: Arc::clone(&log),
            _app: std::marker::PhantomData,
        });
    }
    let plan = NemesisPlan::generate(
        &churn_nemesis(seed ^ 0xC0FFEE, SimTime::from_secs(3), SimTime::from_secs(10), 1),
        cluster.groups(),
    );
    plan.apply(&mut cluster.sim);
    cluster.run_for(SimDuration::from_secs(12));
    let errors = cluster.metrics().counter(mn::CMD_FAILED);
    let log = log.lock().expect("golden log");
    (log.hash, log.count, errors)
}

/// Recorded from a verified run of this revision; identical in debug and
/// release builds. Re-record alongside [`GOLDEN_HASH`] when a deliberate
/// protocol change reorders deliveries.
const SCENARIO_GOLDEN_SEED: u64 = 42;
const SCENARIO_GOLDEN_HASH: u64 = 0x8e05_a8c9_78a8_50da;
const SCENARIO_GOLDEN_COUNT: u64 = 15306;

#[test]
fn churn_flash_crowd_scenario_matches_golden_hash() {
    let (hash, count, errors) = run_scenario_golden(SCENARIO_GOLDEN_SEED);
    assert_eq!(errors, 0, "adversarial scenario surfaced client-visible command errors");
    assert_eq!(
        count, SCENARIO_GOLDEN_COUNT,
        "completion count drifted from the recorded scenario execution"
    );
    assert_eq!(
        hash, SCENARIO_GOLDEN_HASH,
        "churn + flash-crowd delivered sequence drifted (hash {hash:#018x}); if a \
         deliberate protocol change reordered deliveries, re-record the constant \
         in this commit"
    );
}

// ---------------------------------------------------------------------------
// Chained-migration golden: give-up reverts racing chained moves.
//
// The scenario from `crates/core/tests/chained_migration.rs` (and the
// `chained_move` fig9 scenario): a rotating hot block drives plans that
// keep re-routing the same keys while a pure-delay brownout of the
// partition-0 ↔ 1 mesh pushes chunk acks past the give-up point, so
// `MigrationRevert` and `MigrationDone` race in the total order and the
// plan-history replay settles the loser. Pinning the delivered-command
// hash keeps that settling deterministic — and identical across debug and
// release builds.
// ---------------------------------------------------------------------------

/// Rotating-hot counters + 0 ↔ 1 brownout; returns
/// `(hash, completions, client_visible_errors)`.
fn run_chained_golden(seed: u64) -> (u64, u64, u64) {
    use dynastar::core::server::ServerConfig;
    use dynastar::core::{
        Application, ClusterBuilder, ClusterConfig, CommandKind, LocKey, PartitionId, VarId,
        Workload,
    };
    use dynastar::runtime::SimTime;
    use rand::Rng;
    use std::collections::BTreeMap;

    const DOMAIN: u64 = 60;
    const STRIDE: u64 = 20;
    const ROT_PERIOD: SimDuration = SimDuration::from_secs(2);

    struct Counters;
    impl Application for Counters {
        type Op = i64;
        type Value = i64;
        type Reply = i64;
        fn locality(var: VarId) -> LocKey {
            LocKey(var.0)
        }
        fn execute(op: &i64, vars: &mut BTreeMap<VarId, Option<i64>>) -> i64 {
            let mut last = 0;
            for v in vars.values_mut() {
                last = v.unwrap_or(0) + op;
                *v = Some(last);
            }
            last
        }
    }

    struct RotatingHot;
    impl Workload<Counters> for RotatingHot {
        fn next_command(
            &mut self,
            now: SimTime,
            rng: &mut StdRng,
        ) -> Option<CommandKind<Counters>> {
            let offset = (now.as_micros() / ROT_PERIOD.as_micros()) * STRIDE % DOMAIN;
            let rank = (offset + rng.gen_range(0..STRIDE)) % DOMAIN;
            Some(CommandKind::Access { op: 1, vars: vec![VarId(rank)] })
        }
    }

    let config = ClusterConfig {
        partitions: 3,
        replicas: 3,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 60,
        min_plan_interval: ROT_PERIOD,
        warm_client_caches: true,
        server: ServerConfig {
            staged_migration: true,
            migration_chunk_vars: 4,
            migration_var_bytes: 1024,
            migration_link_bytes_per_sec: 1024 * 1024,
            migration_chunk_timeout: SimDuration::from_millis(100),
            migration_max_retries: 3,
            migration_max_inflight_per_link: 2,
            hint_batch: 4,
            ..ServerConfig::default()
        },
        client_retry_backoff: SimDuration::from_millis(2),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    for v in 0..DOMAIN {
        b.place(LocKey(v), PartitionId((v / STRIDE) as u32));
        b.with_var(VarId(v), 0);
    }
    let mut cluster = b.build();
    let log = Arc::new(Mutex::new(GoldenLog::new()));
    for _ in 0..3 {
        cluster.add_client(Recording {
            inner: RotatingHot,
            log: Arc::clone(&log),
            _app: std::marker::PhantomData,
        });
    }
    let (ga, gb) = {
        let groups = cluster.groups();
        (groups[0].clone(), groups[1].clone())
    };
    for &x in &ga {
        for &y in &gb {
            for (from, to) in [(x, y), (y, x)] {
                cluster.sim.schedule_link_degrade(
                    SimTime::from_secs(4),
                    from,
                    to,
                    SimDuration::from_secs(2),
                    0,
                );
                cluster.sim.schedule_link_repair(SimTime::from_secs(12), from, to);
            }
        }
    }
    cluster.run_for(SimDuration::from_secs(20));
    let errors = cluster.metrics().counter(mn::CMD_FAILED);
    let log = log.lock().expect("golden log");
    (log.hash, log.count, errors)
}

/// Recorded from a verified run of this revision; identical in debug and
/// release builds. Re-record alongside [`GOLDEN_HASH`] when a deliberate
/// protocol change reorders deliveries.
const CHAINED_GOLDEN_SEED: u64 = 7;
const CHAINED_GOLDEN_HASH: u64 = 0xb765_527d_900a_ab38;
const CHAINED_GOLDEN_COUNT: u64 = 18515;

#[test]
fn chained_migration_scenario_matches_golden_hash() {
    let (hash, count, errors) = run_chained_golden(CHAINED_GOLDEN_SEED);
    assert_eq!(errors, 0, "chained-migration scenario surfaced client-visible command errors");
    assert_eq!(
        count, CHAINED_GOLDEN_COUNT,
        "completion count drifted from the recorded chained execution"
    );
    assert_eq!(
        hash, CHAINED_GOLDEN_HASH,
        "chained-migration delivered sequence drifted (hash {hash:#018x}); if a \
         deliberate protocol change reordered deliveries, re-record the constant \
         in this commit"
    );
}

// ---------------------------------------------------------------------------
// Parallel-execution golden: 8 modelled workers.
//
// The conflict-aware worker pool (DESIGN.md, execution model) is a pure
// timing layer: replicas must stay bit-identical to each other at any
// width, and the whole run must stay deterministic across build profiles.
// The `run_golden` scenario re-run with `ExecConfig::pool(8, 150 us)` pins
// exactly that — the schedule differs from the serial golden (completions
// happen earlier), but it must be *this* schedule, every time.
// ---------------------------------------------------------------------------

/// The `run_golden` scenario with an 8-worker execution pool; returns
/// `(hash, completions)`.
fn run_parallel_exec_golden(seed: u64) -> (u64, u64) {
    use dynastar::core::{ClusterBuilder, ClusterConfig, ExecConfig, PartitionId};
    use dynastar::workloads::chirper::{Chirper, ChirperUser};
    use dynastar::workloads::placement;

    let mut rng = StdRng::seed_from_u64(99);
    let graph = SocialGraph::barabasi_albert(150, 3, &mut rng);
    let config = ClusterConfig {
        partitions: 2,
        replicas: 2,
        mode: Mode::Dynastar,
        seed,
        repartition_threshold: 300,
        min_plan_interval: SimDuration::from_secs(2),
        warm_client_caches: true,
        exec: ExecConfig::pool(8, SimDuration::from_micros(150)),
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let mut seed_rng = StdRng::seed_from_u64(7);
    let map = placement::random(keys, 2, &mut seed_rng);
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, PartitionId(p.0));
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = ChirperUser {
            timeline: Default::default(),
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
        };
        (Chirper::var(u), Arc::new(user))
    }));
    let mut cluster = b.build();
    let shared = Arc::new(Mutex::new(graph));
    let log = Arc::new(Mutex::new(GoldenLog::new()));
    for _ in 0..4 {
        cluster.add_client(Recording {
            inner: ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX),
            log: Arc::clone(&log),
            _app: std::marker::PhantomData,
        });
    }
    cluster.run_for(SimDuration::from_secs(15));
    let log = log.lock().expect("golden log");
    (log.hash, log.count)
}

/// Recorded from a verified run of this revision; identical in debug and
/// release builds. Re-record alongside [`GOLDEN_HASH`] when a deliberate
/// protocol change reorders deliveries.
const PARALLEL_GOLDEN_SEED: u64 = 42;
const PARALLEL_GOLDEN_HASH: u64 = 0xbbcc_6df4_75d0_281b;
const PARALLEL_GOLDEN_COUNT: u64 = 22489;

#[test]
fn parallel_execution_matches_golden_hash() {
    let (hash, count) = run_parallel_exec_golden(PARALLEL_GOLDEN_SEED);
    assert_eq!(
        count, PARALLEL_GOLDEN_COUNT,
        "completion count drifted from the recorded 8-worker execution"
    );
    assert_eq!(
        hash, PARALLEL_GOLDEN_HASH,
        "8-worker delivered sequence drifted (hash {hash:#018x}); if a deliberate \
         protocol change reordered deliveries, re-record the constant in this commit"
    );
}

#[test]
fn golden_hash_is_reproducible_and_seed_sensitive() {
    let a = run_golden(7);
    let b = run_golden(7);
    assert_eq!(a, b, "same seed must give the same delivered sequence");
    assert!(a.1 > 0, "the golden run must actually complete commands");
    let c = run_golden(8);
    assert_ne!(a.0, c.0, "different seeds must deliver different sequences");
}
