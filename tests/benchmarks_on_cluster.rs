//! Cross-crate integration: the paper's two benchmarks running on a full
//! simulated DynaStar deployment (clients → amcast → Paxos → servers).

use std::sync::{Arc, Mutex};

use dynastar::core::metric_names as mn;
use dynastar::core::{Cluster, ClusterBuilder, ClusterConfig, Mode, PartitionId};
use dynastar::runtime::SimDuration;
use dynastar::workloads::chirper::{Chirper, ChirperMix, ChirperWorkload};
use dynastar::workloads::placement;
use dynastar::workloads::socialgraph::SocialGraph;
use dynastar::workloads::tpcc::{self, Tpcc, TpccScale, TpccWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tpcc_cluster(mode: Mode, partitions: u32, scale: &TpccScale, seed: u64) -> Cluster<Tpcc> {
    let config = ClusterConfig {
        partitions,
        replicas: 2,
        mode,
        seed,
        repartition_threshold: 400,
        min_plan_interval: dynastar::runtime::SimDuration::from_secs(2),
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(config);
    // Align districts/warehouses with partitions (warehouse i → partition
    // i % k), the natural TPC-C placement.
    for key in tpcc::keys(scale) {
        // warehouse_key(w) or district_key(w, d): recover w.
        let w = if key.0 >= (1 << 40) {
            (key.0 - (1 << 40)) as u32
        } else {
            (key.0 / tpcc::DISTRICTS_PER_WAREHOUSE as u64) as u32
        };
        b.place(key, PartitionId(w % partitions));
    }
    b.with_vars(tpcc::rows(scale));
    b.build()
}

#[test]
fn tpcc_runs_on_dynastar() {
    let scale = TpccScale { warehouses: 2, customers_per_district: 10, items: 40 };
    let mut cluster = tpcc_cluster(Mode::Dynastar, 2, &scale, 1);
    let tracker = tpcc::order_tracker();
    for w in 0..2 {
        cluster.add_client(TpccWorkload::new(scale, w, Arc::clone(&tracker)).with_budget(60));
    }
    cluster.run_for(SimDuration::from_secs(120));
    let done = cluster.metrics().counter(mn::CMD_COMPLETED);
    assert_eq!(done, 120, "only {done}/120 transactions completed");
    // The mix has multi-partition transactions (remote payments/lines).
    assert!(cluster.metrics().counter(mn::CMD_SINGLE) > 0);
}

#[test]
fn tpcc_runs_on_ssmr() {
    let scale = TpccScale { warehouses: 2, customers_per_district: 10, items: 40 };
    let mut cluster = tpcc_cluster(Mode::SSmr, 2, &scale, 2);
    let tracker = tpcc::order_tracker();
    for w in 0..2 {
        cluster.add_client(TpccWorkload::new(scale, w, Arc::clone(&tracker)).with_budget(40));
    }
    cluster.run_for(SimDuration::from_secs(120));
    let done = cluster.metrics().counter(mn::CMD_COMPLETED);
    assert_eq!(done, 80, "only {done}/80 transactions completed");
}

fn chirper_cluster(
    mode: Mode,
    partitions: u32,
    graph: &SocialGraph,
    optimized: bool,
    seed: u64,
) -> Cluster<Chirper> {
    let config = ClusterConfig {
        partitions,
        replicas: 2,
        mode,
        seed,
        repartition_threshold: 500,
        min_plan_interval: dynastar::runtime::SimDuration::from_secs(2),
        warm_client_caches: true,
        ..ClusterConfig::default()
    };
    let keys = (0..graph.users() as u64).map(Chirper::key);
    let map = if optimized {
        placement::optimized(
            keys,
            graph.coaccess_edges().map(|(a, b)| (Chirper::key(a), Chirper::key(b), 1)),
            partitions,
            seed,
        )
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        placement::random(keys, partitions, &mut rng)
    };
    let mut b = ClusterBuilder::new(config);
    for (k, p) in map {
        b.place(k, p);
    }
    b.with_vars((0..graph.users() as u64).map(|u| {
        let user = dynastar::workloads::chirper::ChirperUser {
            follows: graph.follows_of(u).to_vec(),
            followers: graph.followers_of(u).to_vec(),
            ..Default::default()
        };
        (Chirper::var(u), std::sync::Arc::new(user))
    }));
    b.build()
}

#[test]
fn chirper_mix_runs_on_dynastar() {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = SocialGraph::barabasi_albert(120, 3, &mut rng);
    let shared = Arc::new(Mutex::new(graph.clone()));
    let mut cluster = chirper_cluster(Mode::Dynastar, 2, &graph, false, 3);
    for _ in 0..3 {
        cluster.add_client(
            ChirperWorkload::new(Arc::clone(&shared), 0.95, ChirperMix::MIX).with_budget(50),
        );
    }
    cluster.run_for(SimDuration::from_secs(120));
    let done = cluster.metrics().counter(mn::CMD_COMPLETED);
    assert_eq!(done, 150, "only {done}/150 commands completed");
    // Posts with remote followers are multi-partition under random placement.
    assert!(cluster.metrics().counter(mn::CMD_MULTI) > 0);
}

#[test]
fn chirper_timeline_only_is_single_partition() {
    let mut rng = StdRng::seed_from_u64(4);
    let graph = SocialGraph::barabasi_albert(80, 3, &mut rng);
    let shared = Arc::new(Mutex::new(graph.clone()));
    let mut cluster = chirper_cluster(Mode::Dynastar, 2, &graph, false, 4);
    cluster
        .add_client(ChirperWorkload::new(shared, 0.95, ChirperMix::TIMELINE_ONLY).with_budget(80));
    cluster.run_for(SimDuration::from_secs(60));
    assert_eq!(cluster.metrics().counter(mn::CMD_COMPLETED), 80);
    assert_eq!(cluster.metrics().counter(mn::CMD_MULTI), 0);
    assert_eq!(cluster.metrics().counter(mn::OBJECTS_EXCHANGED), 0);
}

#[test]
fn chirper_on_ssmr_star_with_optimized_placement() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = SocialGraph::barabasi_albert(120, 3, &mut rng);
    let shared = Arc::new(Mutex::new(graph.clone()));
    let mut cluster = chirper_cluster(Mode::SSmr, 2, &graph, true, 5);
    cluster.add_client(ChirperWorkload::new(shared, 0.95, ChirperMix::MIX).with_budget(80));
    cluster.run_for(SimDuration::from_secs(120));
    assert_eq!(cluster.metrics().counter(mn::CMD_COMPLETED), 80);
}
