#!/bin/bash
# Regenerates every experiment result (results/) and the canonical
# test/bench transcripts. Run from the repository root.
set -u
mkdir -p results
cargo build --release -p dynastar-bench 2>&1 | tail -1
for b in fig2_repartitioning fig8_oracle_load table1_partition_load fig3_tpcc_scalability fig5_latency_cdf fig4_social_throughput fig6_dynamic_workload ablation_modes fig7_partitioner_scaling; do
  echo "=== $b start $(date +%T) ==="
  timeout 1200 ./target/release/$b > results/$b.txt 2> results/$b.log
  echo "=== $b exit=$? end $(date +%T) ==="
done
echo ALL_EXPERIMENTS_DONE
