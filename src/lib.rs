//! # DynaStar
//!
//! A Rust reproduction of *"DynaStar: Optimized Dynamic Partitioning for
//! Scalable State Machine Replication"* (Le, Fynn, Eslahi-Kelorazi, Soulé,
//! Pedone — ICDCS 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`runtime`] — deterministic discrete-event simulation substrate
//! * [`paxos`] — Multi-Paxos consensus per replica group
//! * [`amcast`] — genuine atomic multicast over Paxos groups
//! * [`partitioner`] — multilevel k-way graph partitioning (METIS substitute)
//! * [`core`] — the DynaStar protocol (oracle, servers, clients) and the
//!   S-SMR / DS-SMR baselines
//! * [`workloads`] — TPC-C, the Chirper social network, graph and Zipf
//!   generators, and closed-loop client drivers
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; the `examples/` directory contains runnable end-to-end
//! scenarios.

#![forbid(unsafe_code)]

pub use dynastar_amcast as amcast;
pub use dynastar_core as core;
pub use dynastar_partitioner as partitioner;
pub use dynastar_paxos as paxos;
pub use dynastar_runtime as runtime;
pub use dynastar_workloads as workloads;
