//! Offline stand-in for `crossbeam`. Only the `channel` module's unbounded
//! MPSC subset is provided, backed by `std::sync::mpsc` (which, since Rust
//! 1.72, *is* a crossbeam-derived implementation — `Sender` is `Sync` and
//! performance is comparable for the unbounded case the workspace uses).

pub mod channel {
    //! Unbounded channels with crossbeam's naming.

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
