//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()`
//! signature, implemented over `std::sync`. Poison errors are swallowed
//! (parking_lot has no poisoning), which matches how the workspace uses
//! locks: metrics and address books that stay consistent across panics.

use std::sync::TryLockError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
