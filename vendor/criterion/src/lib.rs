//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple mean-of-N timer instead of
//! upstream's statistical machinery. Good enough to spot order-of-
//! magnitude regressions while staying dependency-free.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId(param.to_string())
    }

    /// A `function_name/parameter` id.
    pub fn new<D: Display>(name: &str, param: D) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // One warm-up call, then the measured run.
    let mut warmup = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warmup);
    let mut b = Bencher { iters: sample_size.max(1) as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {name:<50} {:>12.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size, _c: self }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.default_sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run benchmark groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
