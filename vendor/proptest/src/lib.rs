//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: [`Strategy`] over integer ranges and tuples, `prop_map`,
//! [`Just`], `prop_oneof!`, `prop::collection::vec`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case prints its
//! seed and case number instead), and value generation is driven by the
//! workspace's vendored deterministic `StdRng`, so failures reproduce
//! exactly across runs and machines.

use std::fmt;

pub use rand;
use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// Rejection sentinel used by `prop_assume!` (public for the macros).
pub const REJECT_SENTINEL: &str = "\u{1}proptest-reject";

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies, built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or all weights are zero.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = variants.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.variants {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    //! Collection strategies (`vec`).

    use super::*;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `elem` with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace re-exports (`prop::collection::vec`).
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test file needs.
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::REJECT_SENTINEL.to_string());
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed: FNV-1a of the test name.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1_0000_0000_01b3);
            }
            for case in 0..cfg.cases {
                let case_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>
                    ::seed_from_u64(case_seed);
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __result = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(ref m) if m == $crate::REJECT_SENTINEL => continue,
                    ::std::result::Result::Err(m) => {
                        panic!("property {} failed on case {} (seed {:#x}): {}",
                               stringify!($name), case, case_seed, m);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in 5usize..=9) {
            prop_assert!(x < 10);
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..255, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len = {}", v.len());
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            2 => (0u32..5).prop_map(|x| x * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
        }
    }
}
