//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on wire and metric
//! types for forward compatibility but never serializes through serde at
//! runtime (reports are hand-rendered). This stub keeps those derives
//! compiling without network access: the traits are empty markers and the
//! derive macros (in the sibling `serde_derive` stub) expand to nothing.

/// Marker for serializable types. No methods; see crate docs.
pub trait Serialize {}

/// Marker for deserializable types. No methods; see crate docs.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
