//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits and [`seq::SliceRandom`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — different numbers than upstream `StdRng`
//! (ChaCha12), but with the property the repo actually relies on:
//! identical seeds produce identical streams, forever, on every platform.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next().to_le_bytes();
            let n = chunk.len().min(bytes.len() - i);
            bytes[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for the vendored proptest harness).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output. Named after the reference implementation; not
    /// an iterator (the stream is infinite and never yields `None`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types sampleable uniformly from their full domain (the `Standard`
/// distribution in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
