//! Sequence-related helpers ([`SliceRandom`]).

use crate::{Rng, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching upstream's
    /// high-to-low order).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly picks one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}
