//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub: the derives must parse so annotated types compile,
//! but nothing in the workspace serializes through serde, so they expand
//! to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
